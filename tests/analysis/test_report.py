"""Tests for trace analytics and the benchmark-regression ledger."""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import (
    DEFAULT_MIN_REL_SLOWDOWN,
    build_report,
    compare_against_baseline,
    group_by_protocol,
    load_baseline,
    load_bench_records,
    render_report,
    summarize_trace,
    summarize_trace_dir,
    update_baseline,
)
from repro.dynamics.config import Configuration, wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate, simulate_ensemble
from repro.protocols import minority, voter
from repro.telemetry import JsonlTraceWriter


def _write_trace(path, protocol, n=80, seed=0, rounds=50_000):
    config = wrong_consensus_configuration(n, z=1)
    with JsonlTraceWriter(path) as writer:
        result = simulate(protocol, config, rounds, make_rng(seed), recorder=writer)
    return result


class TestSummarizeTrace:
    def test_voter_trace_summary_fields(self, tmp_path):
        path = tmp_path / "v.jsonl"
        result = _write_trace(path, voter(1), seed=3)
        summary = summarize_trace(path)
        assert summary.runner == "simulate"
        assert summary.protocol == "voter(ell=1)"
        assert summary.n == 80
        assert summary.converged is result.converged
        assert summary.rounds_to_consensus == result.rounds
        assert summary.rounds_per_second > 0
        assert "simulate" in summary.spans

    def test_drift_gap_within_source_correction(self, tmp_path):
        # Prop 5: E[drift | x] = n F_n(x/n) up to the +/-1 source correction,
        # so the gap between realized and predicted mean drift is < 1.
        path = tmp_path / "v.jsonl"
        _write_trace(path, voter(1), seed=3)
        summary = summarize_trace(path)
        assert summary.mean_realized_drift is not None
        assert summary.mean_predicted_drift is not None
        assert summary.drift_gap < 1.0

    def test_ensemble_trace_summarizes(self, tmp_path):
        path = tmp_path / "e.jsonl"
        config = wrong_consensus_configuration(64, z=1)
        with JsonlTraceWriter(path) as writer:
            simulate_ensemble(
                voter(1), config, 20_000, make_rng(1), replicas=3, recorder=writer
            )
        summary = summarize_trace(path)
        assert summary.runner == "simulate_ensemble"
        assert summary.converged is True

    def test_dir_error_names_offending_file(self, tmp_path):
        _write_trace(tmp_path / "good.jsonl", voter(1))
        (tmp_path / "bad.jsonl").write_text("not json\n")
        with pytest.raises(ValueError, match="bad.jsonl"):
            summarize_trace_dir(tmp_path)

    def test_group_by_protocol_pools_runs(self, tmp_path):
        for seed in range(3):
            _write_trace(tmp_path / f"v{seed}.jsonl", voter(1), seed=seed)
        _write_trace(tmp_path / "m.jsonl", minority(3), seed=0, rounds=500)
        reports = group_by_protocol(summarize_trace_dir(tmp_path))
        by_name = {r.protocol: r for r in reports}
        assert by_name["voter(ell=1)"].runs == 3
        assert by_name["voter(ell=1)"].rounds_p50 is not None
        assert by_name["minority(ell=3)"].runs == 1

    def test_columnar_summary_equals_jsonl_summary(self, tmp_path):
        # The zero-reparse fast path must read the same analytics out of
        # the column buffers that the JSONL re-parse computes from dicts.
        from repro.telemetry import jsonl_to_columnar

        jsonl = tmp_path / "run.jsonl"
        _write_trace(jsonl, voter(1), seed=3)
        columnar = tmp_path / "run.ctrace"
        jsonl_to_columnar(jsonl, columnar)
        a = summarize_trace(jsonl)
        b = summarize_trace(columnar)
        assert b.path.endswith(".ctrace")
        for field in (
            "runner", "protocol", "n", "fingerprint", "rounds", "converged",
            "rounds_to_consensus", "mean_realized_drift",
            "mean_predicted_drift", "drift_gap",
        ):
            assert getattr(a, field) == getattr(b, field), field
        assert a.spans == b.spans

    def test_dir_summary_spans_both_formats(self, tmp_path):
        from repro.telemetry import jsonl_to_columnar

        _write_trace(tmp_path / "a.jsonl", voter(1), seed=3)
        jsonl_to_columnar(tmp_path / "a.jsonl", tmp_path / "b.ctrace")
        summaries = summarize_trace_dir(tmp_path)
        assert [s.path.rsplit("/", 1)[-1] for s in summaries] == [
            "a.jsonl", "b.ctrace"
        ]
        assert summaries[0].fingerprint == summaries[1].fingerprint


class TestLedgerGate:
    """The acceptance test: a 2x slowdown is flagged, noise is not."""

    BASELINE = {
        "schema": 1,
        "experiments": {
            # tight baseline: cv ~ 0.05, so the 30% floor dominates
            "E_tight": {"wall_clock_s": 1.0, "samples": [0.95, 1.0, 1.05]},
            # noisy baseline: cv = 0.5, so 3 sigma allows up to 2.5x
            "E_noisy": {"wall_clock_s": 1.0, "samples": [0.5, 1.0, 1.5]},
        },
    }

    def _verdict(self, experiment, wall):
        rows = compare_against_baseline(
            {experiment: {"experiment": experiment, "wall_clock_s": wall}},
            self.BASELINE,
        )
        (row,) = [r for r in rows if r.experiment == experiment]
        return row

    def test_two_x_slowdown_is_flagged(self):
        row = self._verdict("E_tight", 2.0)
        assert row.verdict == "regression"
        assert row.ratio == pytest.approx(2.0)

    def test_within_variance_noise_is_not_flagged(self):
        # 20% over the mean: inside the 30% floor for the tight baseline.
        assert self._verdict("E_tight", 1.2).verdict == "ok"

    def test_noisy_baseline_widens_the_gate(self):
        # The same 2x wall clock that fails the tight gate passes the noisy
        # one: 3 sigma of its run-to-run cv (0.5) allows up to 2.5x.
        assert self._verdict("E_noisy", 2.0).verdict == "ok"
        assert self._verdict("E_noisy", 2.6).verdict == "regression"

    def test_improvement_verdict(self):
        assert self._verdict("E_tight", 0.5).verdict == "improved"

    def test_new_and_missing_experiments(self):
        rows = compare_against_baseline(
            {"E_new": {"experiment": "E_new", "wall_clock_s": 1.0}},
            self.BASELINE,
        )
        verdicts = {row.experiment: row.verdict for row in rows}
        assert verdicts["E_new"] == "new"
        assert verdicts["E_tight"] == "missing"
        assert verdicts["E_noisy"] == "missing"

    def test_smoke_vs_full_is_incomparable(self):
        rows = compare_against_baseline(
            {"E_tight": {"experiment": "E_tight", "wall_clock_s": 0.1, "smoke": True}},
            self.BASELINE,
        )
        (row,) = [r for r in rows if r.experiment == "E_tight"]
        assert row.verdict == "incomparable"

    def test_threshold_floor_matches_default(self):
        row = self._verdict("E_tight", 2.0)
        assert row.threshold == pytest.approx(1.0 + DEFAULT_MIN_REL_SLOWDOWN)


class TestBaselineRoundTrip:
    def test_missing_baseline_is_empty_sentinel(self, tmp_path):
        baseline = load_baseline(tmp_path / "nope.json")
        assert baseline == {"schema": 1, "experiments": {}}

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "BASELINE.json"
        path.write_text('{"schema": 99, "experiments": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_update_accumulates_samples(self):
        baseline = {"schema": 1, "experiments": {}}
        for wall in (1.0, 1.2, 0.8):
            baseline = update_baseline(
                {"E1": {"experiment": "E1", "wall_clock_s": wall, "rounds": 10}},
                baseline,
            )
        entry = baseline["experiments"]["E1"]
        assert entry["samples"] == [1.0, 1.2, 0.8]
        assert entry["wall_clock_s"] == pytest.approx(1.0)
        assert entry["rounds"] == 10

    def test_update_caps_sample_history(self):
        baseline = {"schema": 1, "experiments": {}}
        for i in range(15):
            baseline = update_baseline(
                {"E1": {"experiment": "E1", "wall_clock_s": float(i)}},
                baseline,
                max_samples=10,
            )
        assert len(baseline["experiments"]["E1"]["samples"]) == 10
        assert baseline["experiments"]["E1"]["samples"][-1] == 14.0

    def test_update_records_smoke_flag(self):
        baseline = update_baseline(
            {"E1": {"experiment": "E1", "wall_clock_s": 1.0, "smoke": True}},
            {"schema": 1, "experiments": {}},
        )
        assert baseline["experiments"]["E1"]["smoke"] is True


class TestBuildReport:
    def test_end_to_end_report(self, tmp_path):
        _write_trace(tmp_path / "v.jsonl", voter(1), seed=3)
        (tmp_path / "BENCH_E1_demo.json").write_text(
            json.dumps(
                {"experiment": "E1_demo", "schema": 1, "wall_clock_s": 2.5}
            )
        )
        (tmp_path / "BASELINE.json").write_text(
            json.dumps(
                {"schema": 1, "experiments": {"E1_demo": {"wall_clock_s": 1.0}}}
            )
        )
        report = build_report(tmp_path)
        assert report["protocols"][0]["protocol"] == "voter(ell=1)"
        assert report["benchmarks"][0]["verdict"] == "regression"
        assert report["regressions"]
        text = render_report(report)
        assert "voter(ell=1)" in text
        assert "REGRESSIONS" in text
        json.dumps(report)  # the whole report must be JSON-able

    def test_report_without_regressions_says_so(self, tmp_path):
        _write_trace(tmp_path / "v.jsonl", voter(1), seed=3)
        (tmp_path / "BENCH_E1_demo.json").write_text(
            json.dumps(
                {"experiment": "E1_demo", "schema": 1, "wall_clock_s": 1.05}
            )
        )
        (tmp_path / "BASELINE.json").write_text(
            json.dumps(
                {"schema": 1, "experiments": {"E1_demo": {"wall_clock_s": 1.0}}}
            )
        )
        report = build_report(tmp_path)
        assert report["regressions"] == []
        assert "no regressions" in render_report(report)

    def test_report_without_bench_records_points_at_bench(self, tmp_path):
        _write_trace(tmp_path / "v.jsonl", voter(1), seed=3)
        report = build_report(tmp_path)
        assert report["regressions"] == []
        assert "repro bench" in render_report(report)

    def test_load_bench_records_skips_malformed(self, tmp_path):
        (tmp_path / "BENCH_ok.json").write_text(
            json.dumps({"experiment": "ok", "schema": 1, "wall_clock_s": 1.0})
        )
        records = load_bench_records(tmp_path)
        assert set(records) == {"ok"}


class TestDegradedEnsembles:
    BASELINE = {
        "schema": 1,
        "experiments": {"E_ens": {"wall_clock_s": 1.0, "samples": [1.0]}},
    }

    @staticmethod
    def _record(failed_shards, wall=0.6):
        return {
            "E_ens": {
                "experiment": "E_ens",
                "schema": 1,
                "wall_clock_s": wall,
                "ensemble": {
                    "trials": 6,
                    "censored": 0,
                    "failed_shards": failed_shards,
                    "attempted_trials": 8,
                },
            }
        }

    def test_shards_lost_is_degraded_not_improved(self):
        # The partial run is *faster* than baseline — without the degraded
        # verdict it would read as an improvement.
        (row,) = compare_against_baseline(self._record(2), self.BASELINE)
        assert row.verdict == "degraded"
        assert row.ratio != row.ratio  # nan: the timing is incomparable

    def test_intact_ensemble_compares_normally(self):
        (row,) = compare_against_baseline(
            self._record(0, wall=1.1), self.BASELINE
        )
        assert row.verdict == "ok"

    def test_update_baseline_refuses_degraded_records(self):
        updated = update_baseline(self._record(2), self.BASELINE)
        assert updated["experiments"]["E_ens"]["samples"] == [1.0]

    def test_update_baseline_accepts_intact_ensembles(self):
        updated = update_baseline(self._record(0, wall=1.2), self.BASELINE)
        assert updated["experiments"]["E_ens"]["samples"] == [1.0, 1.2]

    def test_build_report_surfaces_degraded(self, tmp_path):
        (tmp_path / "BENCH_E_ens.json").write_text(
            json.dumps(self._record(1)["E_ens"])
        )
        report = build_report(tmp_path)
        assert [row["experiment"] for row in report["degraded"]] == ["E_ens"]
        assert "DEGRADED" in render_report(report)


class TestResourceUsage:
    def test_resource_rows_surface_in_report(self, tmp_path):
        (tmp_path / "BENCH_E1_demo.json").write_text(
            json.dumps(
                {
                    "experiment": "E1_demo", "schema": 1, "wall_clock_s": 2.5,
                    "cpu_s": 9.75, "max_rss_bytes": 104857600,
                }
            )
        )
        report = build_report(tmp_path)
        (row,) = report["resources"]
        assert row == {
            "experiment": "E1_demo",
            "cpu_s": 9.75,
            "max_rss_bytes": 104857600,
            "wall_clock_s": 2.5,
        }
        text = render_report(report)
        assert "Resource usage" in text
        assert "100.0MB" in text
        assert "9.75" in text

    def test_records_without_resource_fields_are_skipped(self, tmp_path):
        # Pre-observability BENCH records carry neither field; the section
        # must vanish rather than render a table of dashes.
        (tmp_path / "BENCH_old.json").write_text(
            json.dumps({"experiment": "old", "schema": 1, "wall_clock_s": 1.0})
        )
        report = build_report(tmp_path)
        assert report["resources"] == []
        assert "Resource usage" not in render_report(report)

    def test_failed_record_still_reports_peak_rss(self, tmp_path):
        # A crashed harness archives max_rss_bytes with cpu_s null: the
        # peak is often the clue (OOM), so the row must survive.
        (tmp_path / "BENCH_E_boom.json").write_text(
            json.dumps(
                {
                    "experiment": "E_boom", "schema": 1,
                    "wall_clock_s": None, "failed": True,
                    "cpu_s": None, "max_rss_bytes": 2147483648,
                }
            )
        )
        report = build_report(tmp_path)
        (row,) = report["resources"]
        assert row["max_rss_bytes"] == 2147483648
        assert row["cpu_s"] is None
        assert "2.0GB" in render_report(report)


class TestScenarioReporting:
    SPEC = "flip-source:at=12"

    def _write_hostile(self, path, seed=5, replicas=4):
        config = Configuration(n=48, z=1, x0=24)
        with JsonlTraceWriter(path) as writer:
            simulate_ensemble(
                voter(1), config, 4000, make_rng(seed), replicas=replicas,
                recorder=writer, scenario=self.SPEC,
            )

    def test_summary_carries_scenario_fields(self, tmp_path):
        path = tmp_path / "hostile.jsonl"
        self._write_hostile(path)
        summary = summarize_trace(path)
        assert summary.scenario == self.SPEC
        assert summary.settle_round == 12
        assert summary.recovered == 4
        assert summary.recovery_p50 >= 1
        assert summary.recovery_p90 >= summary.recovery_p50

    def test_clean_summary_has_no_scenario_fields(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        _write_trace(path, voter(1), seed=3)
        summary = summarize_trace(path)
        assert summary.scenario is None
        assert summary.recovered is None

    def test_columnar_summary_matches_jsonl(self, tmp_path):
        from repro.telemetry import jsonl_to_columnar

        jsonl = tmp_path / "hostile.jsonl"
        self._write_hostile(jsonl)
        columnar = tmp_path / "hostile.ctrace"
        jsonl_to_columnar(jsonl, columnar)
        a = summarize_trace(jsonl)
        b = summarize_trace(columnar)
        for field in ("scenario", "settle_round", "recovered",
                      "recovery_p50", "recovery_p90"):
            assert getattr(a, field) == getattr(b, field), field

    def test_group_by_scenario_pools_hostile_runs_only(self, tmp_path):
        from repro.analysis.report import group_by_scenario

        self._write_hostile(tmp_path / "a.jsonl", seed=5)
        self._write_hostile(tmp_path / "b.jsonl", seed=6)
        _write_trace(tmp_path / "clean.jsonl", voter(1), seed=3)
        groups = group_by_scenario(summarize_trace_dir(tmp_path))
        assert len(groups) == 1
        group = groups[0]
        assert group.scenario == self.SPEC
        assert group.runs == 2
        assert group.settle_round == 12
        assert group.recovered == 8

    def test_report_renders_scenario_table(self, tmp_path):
        self._write_hostile(tmp_path / "a.jsonl")
        report = build_report(tmp_path)
        assert report["scenarios"]
        assert report["scenarios"][0]["scenario"] == self.SPEC
        rendered = render_report(report)
        assert "Per-scenario recovery" in rendered
        assert self.SPEC in rendered

    def test_index_round_trip_keeps_scenario_fields(self, tmp_path):
        from repro.analysis.index import refresh_trace_index, summaries_from_index

        self._write_hostile(tmp_path / "a.jsonl")
        index = refresh_trace_index(tmp_path)
        (from_index,) = summaries_from_index(tmp_path, index)
        direct = summarize_trace(tmp_path / "a.jsonl")
        assert from_index.scenario == direct.scenario == self.SPEC
        assert from_index.settle_round == direct.settle_round
        assert from_index.recovery_p90 == direct.recovery_p90
