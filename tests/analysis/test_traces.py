"""Tests for trajectory fans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.traces import trajectory_fan
from repro.dynamics.config import Configuration
from repro.protocols import minority, voter


class TestTrajectoryFan:
    def test_band_ordering(self, rng):
        fan = trajectory_fan(
            minority(3), Configuration(n=500, z=1, x0=100), 30, rng, replicas=60
        )
        assert np.all(fan.q10 <= fan.median + 1e-9)
        assert np.all(fan.median <= fan.q90 + 1e-9)
        assert fan.rounds[0] == 0 and len(fan.rounds) == 31

    def test_mean_field_shadow_inside_band_early(self, rng):
        """For moderate horizons the deterministic shadow tracks the band."""
        n = 10_000
        fan = trajectory_fan(
            minority(3), Configuration(n=n, z=1, x0=2000), 20, rng, replicas=50
        )
        assert fan.mean_field is not None
        inside = (fan.mean_field >= fan.q10 - 0.05 * n) & (
            fan.mean_field <= fan.q90 + 0.05 * n
        )
        assert inside.all()

    def test_zero_bias_has_no_shadow(self, rng):
        fan = trajectory_fan(
            voter(1), Configuration(n=100, z=1, x0=50), 10, rng, replicas=10
        )
        assert fan.mean_field is None
        assert len(fan.as_series()) == 3

    def test_series_normalization(self, rng):
        fan = trajectory_fan(
            minority(3), Configuration(n=200, z=1, x0=100), 5, rng, replicas=10
        )
        series = fan.as_series(normalize=200)
        assert all(np.all(s.y <= 1.0 + 1e-9) for s in series)
        assert len(series) == 4  # q10, median, q90, mean-field

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="rounds"):
            trajectory_fan(voter(1), Configuration(n=10, z=1, x0=5), 0, rng, 10)
        with pytest.raises(ValueError, match="replicas"):
            trajectory_fan(voter(1), Configuration(n=10, z=1, x0=5), 5, rng, 1)

    def test_absorbed_replicas_stay_parked(self, rng):
        fan = trajectory_fan(
            voter(1), Configuration(n=30, z=1, x0=29), 200, rng, replicas=30
        )
        # Late in the run most replicas are absorbed at 30: the q90 band sits
        # exactly on the consensus and never leaves it.
        assert fan.q90[-1] == 30
        last_hit = np.nonzero(fan.q90 == 30)[0][0]
        assert np.all(fan.q90[last_hit:] == 30)
