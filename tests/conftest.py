"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.rng import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; reseeded per test for isolation."""
    return make_rng(20240707)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic generators within one test."""

    def factory(offset: int = 0) -> np.random.Generator:
        return make_rng(77_000 + offset)

    return factory
