"""Tests of the bias polynomial (Eq. 3) and the drift identity (Prop. 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bias import (
    bias_coefficients,
    bias_from_coefficients,
    bias_value,
    drift_identity_gap,
    expected_next_count,
)
from repro.protocols import (
    biased_voter,
    minority,
    minority_ell3_bias,
    random_protocol,
    voter,
)

GRID = np.linspace(0.0, 1.0, 41)


class TestBiasValue:
    def test_voter_bias_is_identically_zero(self):
        for ell in (1, 2, 3, 7):
            np.testing.assert_allclose(bias_value(voter(ell), GRID), 0.0, atol=1e-12)

    def test_minority_ell3_matches_closed_form(self):
        np.testing.assert_allclose(
            bias_value(minority(3), GRID), minority_ell3_bias(GRID), atol=1e-12
        )

    def test_biased_voter_is_single_bernstein_lobe(self):
        ell, k, delta = 4, 2, 0.15
        protocol = biased_voter(ell, k, delta)
        from math import comb

        expected = delta * comb(ell, k) * GRID**k * (1 - GRID) ** (ell - k)
        np.testing.assert_allclose(bias_value(protocol, GRID), expected, atol=1e-12)

    def test_scalar_input_gives_float(self):
        value = bias_value(minority(3), 0.25)
        assert isinstance(value, float)
        assert value == pytest.approx(float(minority_ell3_bias(0.25)))

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_solving_protocols_vanish_at_endpoints(self, ell):
        rng = np.random.default_rng(ell)
        protocol = random_protocol(ell, rng, solving=True)
        assert bias_value(protocol, 0.0) == pytest.approx(0.0, abs=1e-12)
        assert bias_value(protocol, 1.0) == pytest.approx(0.0, abs=1e-12)

    @given(st.integers(min_value=1, max_value=6), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_bias_bounded_by_one(self, ell, seed):
        protocol = random_protocol(ell, np.random.default_rng(seed), solving=False)
        values = bias_value(protocol, GRID)
        assert np.all(np.abs(values) <= 1.0 + 1e-12)


class TestBiasCoefficients:
    @given(st.integers(min_value=1, max_value=8), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_expansion_matches_pointwise_evaluation(self, ell, seed):
        protocol = random_protocol(ell, np.random.default_rng(seed), solving=True)
        coefficients = bias_coefficients(protocol)
        np.testing.assert_allclose(
            bias_from_coefficients(coefficients, GRID),
            bias_value(protocol, GRID),
            atol=1e-9,
        )

    def test_degree_is_at_most_ell_plus_one(self):
        for ell in (1, 3, 5):
            coefficients = bias_coefficients(minority(ell))
            assert len(coefficients) == ell + 2

    def test_minority_ell3_coefficients(self):
        # F(p) = 2p - 6p^2 + 4p^3
        np.testing.assert_allclose(
            bias_coefficients(minority(3)), [0.0, 2.0, -6.0, 4.0, 0.0], atol=1e-12
        )

    def test_voter_coefficients_are_zero(self):
        np.testing.assert_allclose(bias_coefficients(voter(5)), 0.0, atol=1e-12)


class TestExpectedNextCount:
    def test_consensus_is_fixed_point_in_expectation(self):
        protocol = minority(3)
        assert expected_next_count(protocol, 100, 1, 100) == pytest.approx(100.0)
        assert expected_next_count(protocol, 100, 0, 0) == pytest.approx(0.0)

    def test_out_of_range_count_rejected(self):
        with pytest.raises(ValueError, match="count x"):
            expected_next_count(voter(1), 100, 1, 0)  # x=0 impossible when z=1
        with pytest.raises(ValueError, match="count x"):
            expected_next_count(voter(1), 100, 0, 100)  # x=n impossible when z=0

    def test_voter_drift_is_source_pull_only(self):
        # For the Voter, E[X'] = x + z - x/n: each non-source agent copies a
        # uniform agent, and only the pinned source breaks the martingale.
        n = 64
        for z in (0, 1):
            low = z
            high = n - (1 - z)
            counts = np.arange(low, high + 1)
            expected = counts + z - counts / n
            np.testing.assert_allclose(
                expected_next_count(voter(1), n, z, counts), expected, atol=1e-9
            )

    def test_monte_carlo_agreement(self):
        from repro.dynamics.engine import step_count

        protocol = minority(3)
        n, z, x = 300, 1, 200
        rng = np.random.default_rng(7)
        samples = [step_count(protocol, n, z, x, rng) for _ in range(4000)]
        analytic = expected_next_count(protocol, n, z, x)
        standard_error = np.std(samples) / np.sqrt(len(samples))
        assert abs(np.mean(samples) - analytic) < 5 * standard_error + 1e-9


class TestDriftIdentity:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(0, 2**32 - 1),
        st.sampled_from([0, 1]),
    )
    @settings(max_examples=40, deadline=None)
    def test_proposition5_gap_within_unit(self, ell, seed, z):
        """Proposition 5: |E[X'] - x - n F(x/n)| <= 1 at every state."""
        protocol = random_protocol(ell, np.random.default_rng(seed), solving=True)
        n = 97
        low = z
        high = n - (1 - z)
        counts = np.arange(low, high + 1)
        gaps = drift_identity_gap(protocol, n, z, counts)
        assert np.all(np.abs(gaps) <= 1.0 + 1e-9)

    def test_gap_formula(self):
        # The exact gap is z (1 - P1) - (1 - z) P0 (from the Prop-5 proof).
        protocol = minority(3)
        n, x = 128, 77
        p0, p1 = protocol.response_probabilities(x / n)
        assert drift_identity_gap(protocol, n, 1, x) == pytest.approx(1 - p1)
        assert drift_identity_gap(protocol, n, 0, x) == pytest.approx(-p0)
