"""Tests of Proposition 4 (the one-round jump bound)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.jump_bound import (
    check_jump_bound,
    jump_bound_y,
    jump_failure_probability,
)
from repro.core.protocol import Protocol
from repro.protocols import majority, minority, voter


class TestJumpBoundConstant:
    def test_matches_paper_formula(self):
        # y(c, ell) = 1 - (1 - c)^(ell+1) / 2
        assert jump_bound_y(0.5, 3) == pytest.approx(1 - 0.5**4 / 2)
        assert jump_bound_y(0.25, 1) == pytest.approx(1 - 0.75**2 / 2)

    def test_strictly_between_c_and_one(self):
        for c in (0.1, 0.5, 0.9):
            for ell in (1, 3, 10):
                y = jump_bound_y(c, ell)
                assert c < y < 1.0

    def test_monotone_in_ell(self):
        # Larger samples make it easier to flip zeros: y grows with ell.
        values = [jump_bound_y(0.3, ell) for ell in range(1, 8)]
        assert values == sorted(values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            jump_bound_y(0.0, 3)
        with pytest.raises(ValueError):
            jump_bound_y(1.0, 3)
        with pytest.raises(ValueError):
            jump_bound_y(0.5, 0)

    def test_failure_probability_shrinks(self):
        assert jump_failure_probability(10_000) < jump_failure_probability(100)
        with pytest.raises(ValueError):
            jump_failure_probability(0)


class TestEmpiricalCheck:
    @pytest.mark.parametrize("protocol", [voter(1), minority(3), majority(3)])
    def test_no_violations_for_standard_protocols(self, protocol, rng):
        check = check_jump_bound(protocol, n=2000, c=0.5, trials=300, rng=rng)
        assert check.holds
        assert check.max_fraction_reached <= check.y

    def test_minority_large_sample_near_bound(self, rng):
        # The bound is loose for small ell but the check must still hold.
        check = check_jump_bound(minority(7), n=1500, c=0.4, trials=200, rng=rng)
        assert check.holds

    def test_violating_protocol_rejected(self, rng):
        bad = Protocol(ell=1, g0=[0.3, 1.0], g1=[0.0, 1.0])
        with pytest.raises(ValueError, match="Proposition 3"):
            check_jump_bound(bad, n=100, c=0.5, trials=10, rng=rng)

    def test_check_reports_parameters(self, rng):
        check = check_jump_bound(minority(3), n=500, c=0.25, trials=50, rng=rng)
        assert check.n == 500
        assert check.c == 0.25
        assert check.trials == 50
        assert check.y == pytest.approx(jump_bound_y(0.25, 3))

    def test_intuition_jump_is_possible_without_prop3(self, rng):
        """Without g[0](0) = 0 the population *can* jump to near-consensus.

        This is the contrast that makes Proposition 4 meaningful: an
        everyone-adopts-1 rule moves from any configuration to x = n (minus
        the source) in a single round.
        """
        eager = Protocol(ell=1, g0=[1.0, 1.0], g1=[1.0, 1.0])
        from repro.dynamics.engine import step_count

        next_count = step_count(eager, 1000, 0, 10, rng)
        assert next_count == 999  # everyone but the 0-source adopts 1
