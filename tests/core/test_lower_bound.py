"""Tests of the Theorem-12 lower-bound pipeline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bias import bias_value
from repro.core.lower_bound import lower_bound_certificate, verify_escape_assumptions
from repro.core.protocol import Protocol
from repro.core.roots import is_zero_bias
from repro.dynamics.run import escape_time
from repro.protocols import (
    biased_voter,
    double_lobe,
    minority,
    random_protocol,
    voter,
    voter_minority_blend,
)


class TestClassification:
    def test_voter_is_lemma_11(self):
        certificate = lower_bound_certificate(voter(1))
        assert "Lemma 11" in certificate.case
        assert certificate.z == 1
        assert (certificate.a1, certificate.a2, certificate.a3) == (0.25, 0.5, 0.75)

    def test_minority_is_case_one(self):
        certificate = lower_bound_certificate(minority(3))
        assert "case 1" in certificate.case
        assert certificate.z == 1
        assert certificate.escape_is_upward
        assert certificate.interval[0] == pytest.approx(0.5, abs=1e-9)

    def test_positive_lobe_is_case_two(self):
        certificate = lower_bound_certificate(biased_voter(3, 1, 0.2))
        assert "case 2" in certificate.case
        assert certificate.z == 0
        assert not certificate.escape_is_upward

    def test_negative_lobe_is_case_one(self):
        certificate = lower_bound_certificate(biased_voter(3, 2, -0.2))
        assert "case 1" in certificate.case

    def test_double_lobe_uses_last_interval(self):
        certificate = lower_bound_certificate(double_lobe(0.3))
        assert "case 1" in certificate.case
        assert certificate.interval[0] == pytest.approx(0.3, abs=1e-6)

    def test_constants_ordered_inside_interval(self):
        for protocol in (minority(3), minority(5), biased_voter(3, 1, 0.1)):
            certificate = lower_bound_certificate(protocol)
            assert certificate.interval[0] <= certificate.a1 < certificate.a2
            assert certificate.a2 < certificate.a3 <= certificate.interval[1] + 1e-12

    def test_prop3_violator_rejected(self):
        bad = Protocol(ell=1, g0=[0.5, 1.0], g1=[0.0, 1.0])
        with pytest.raises(ValueError, match="Proposition 3"):
            lower_bound_certificate(bad)

    @given(st.integers(min_value=1, max_value=6), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_every_solving_protocol_gets_a_certificate(self, ell, seed):
        protocol = random_protocol(ell, np.random.default_rng(seed), solving=True)
        certificate = lower_bound_certificate(protocol)
        assert certificate.a1 < certificate.a2 < certificate.a3
        # The sign of F on the working interval matches the case.
        midpoint = (certificate.a1 + certificate.a3) / 2
        value = bias_value(protocol, midpoint)
        if "case 1" in certificate.case:
            assert value < 1e-9
        elif "case 2" in certificate.case:
            assert value > -1e-9


class TestWitnessConfiguration:
    def test_case1_witness_starts_between_a2_and_a3(self):
        certificate = lower_bound_certificate(minority(3))
        config = certificate.witness_configuration(1000)
        assert config.z == 1
        assert certificate.a2 * 1000 <= config.x0 <= certificate.a3 * 1000

    def test_case2_witness_starts_between_a1_and_a2(self):
        certificate = lower_bound_certificate(biased_voter(3, 1, 0.2))
        config = certificate.witness_configuration(1000)
        assert config.z == 0
        assert certificate.a1 * 1000 <= config.x0 <= certificate.a2 * 1000

    def test_escape_threshold_direction(self):
        up = lower_bound_certificate(minority(3))
        assert up.has_escaped(1000, up.escape_threshold(1000))
        assert not up.has_escaped(1000, up.escape_threshold(1000) - 1)
        down = lower_bound_certificate(biased_voter(3, 1, 0.2))
        assert down.has_escaped(1000, down.escape_threshold(1000))
        assert not down.has_escaped(1000, down.escape_threshold(1000) + 1)

    def test_predicted_rounds_formula(self):
        certificate = lower_bound_certificate(voter(1))
        assert certificate.predicted_escape_rounds(10_000, 0.5) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            certificate.predicted_escape_rounds(100, 1.5)

    def test_describe_mentions_case_and_constants(self):
        text = lower_bound_certificate(minority(3)).describe()
        assert "case 1" in text and "a1=" in text and "z=1" in text


class TestAssumptionVerification:
    @pytest.mark.parametrize(
        "protocol",
        [voter(1), minority(3), minority(5), biased_voter(3, 1, 0.2), double_lobe(0.3)],
    )
    def test_assumptions_hold_for_named_protocols(self, protocol):
        certificate = lower_bound_certificate(protocol)
        report = verify_escape_assumptions(certificate, n=4096)
        assert report.drift_ok, report
        assert report.jump_ok, report
        assert report.concentration_tail_bound < 0.1

    def test_report_scales_with_n(self):
        certificate = lower_bound_certificate(minority(3))
        small = verify_escape_assumptions(certificate, n=256)
        large = verify_escape_assumptions(certificate, n=8192)
        assert large.jump_tail_bound <= small.jump_tail_bound
        assert large.predicted_rounds > small.predicted_rounds

    def test_epsilon_validation(self):
        certificate = lower_bound_certificate(voter(1))
        with pytest.raises(ValueError):
            verify_escape_assumptions(certificate, n=128, epsilon=0.0)


class TestEscapeTimesHonorTheBound:
    """Integration: simulated escape times exceed n^(1-eps) (Theorem 12)."""

    @pytest.mark.parametrize(
        "protocol",
        [voter(1), minority(3), biased_voter(3, 1, 0.15)],
        ids=["voter", "minority", "biased-voter"],
    )
    def test_escape_slower_than_bound(self, protocol, rng):
        n = 2048
        epsilon = 0.5
        certificate = lower_bound_certificate(protocol)
        bound = int(certificate.predicted_escape_rounds(n, epsilon))
        budget = 4 * bound
        for _ in range(3):
            observed = escape_time(protocol, certificate, n, budget, rng)
            # None (censored) means the escape took even longer: a pass.
            if observed is not None:
                assert observed >= bound

    def test_zero_bias_escape_is_diffusive(self, rng):
        """For the Voter the escape is a ~n-round diffusion, not instant."""
        n = 4096
        certificate = lower_bound_certificate(voter(1))
        observed = escape_time(voter(1), certificate, n, 50 * n, rng)
        assert observed is None or observed > n ** 0.5
