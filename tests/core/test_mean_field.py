"""Tests for the mean-field analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mean_field import (
    fixed_points,
    iterate_mean_field,
    mean_field_derivative,
    mean_field_map,
    tracking_error,
)
from repro.dynamics.config import Configuration
from repro.dynamics.run import simulate
from repro.protocols import biased_voter, majority, minority, voter


class TestMap:
    def test_voter_map_is_identity(self):
        grid = np.linspace(0, 1, 21)
        np.testing.assert_allclose(mean_field_map(voter(1), grid), grid, atol=1e-12)

    def test_minority_map_closed_form(self):
        # phi(p) = p + 2p(1-p)(1-2p) for Minority at ell = 3.
        grid = np.linspace(0, 1, 21)
        expected = grid + 2 * grid * (1 - grid) * (1 - 2 * grid)
        np.testing.assert_allclose(mean_field_map(minority(3), grid), expected, atol=1e-12)

    def test_endpoints_fixed_for_solving_protocols(self):
        for protocol in (minority(3), majority(3), biased_voter(3, 1, 0.1)):
            assert mean_field_map(protocol, 0.0) == pytest.approx(0.0, abs=1e-12)
            assert mean_field_map(protocol, 1.0) == pytest.approx(1.0, abs=1e-12)

    def test_derivative_matches_analytic(self):
        # d/dp [p + 2p - 6p^2 + 4p^3] = 3 - 12p + 12p^2 at ell = 3 minority.
        for p in (0.1, 0.5, 0.9):
            expected = 3 - 12 * p + 12 * p * p
            assert mean_field_derivative(minority(3), p) == pytest.approx(
                expected, abs=1e-5
            )


class TestFixedPoints:
    def test_minority_classification(self):
        points = {round(fp.location, 6): fp for fp in fixed_points(minority(3))}
        # phi'(0) = 3 (repelling), phi'(1/2) = 0 (attracting), phi'(1) = 3.
        assert points[0.0].stability == "repelling"
        assert points[0.5].stability == "attracting"
        assert points[1.0].stability == "repelling"

    def test_majority_classification(self):
        # Majority: consensus states attract, the midpoint repels.
        points = {round(fp.location, 6): fp for fp in fixed_points(majority(3))}
        assert points[0.0].stability == "attracting"
        assert points[0.5].stability == "repelling"
        assert points[1.0].stability == "attracting"

    def test_voter_rejected(self):
        with pytest.raises(ValueError, match="zero-bias"):
            fixed_points(voter(1))

    def test_oscillatory_flag(self):
        # Large-ell minority at its central fixed point has phi' < 0
        # (overshoot): approach is oscillatory.
        points = fixed_points(minority(15))
        central = min(points, key=lambda fp: abs(fp.location - 0.5))
        assert central.is_oscillatory


class TestIteration:
    def test_minority_converges_to_half(self):
        trajectory = iterate_mean_field(minority(3), 0.2, 60)
        assert trajectory[-1] == pytest.approx(0.5, abs=1e-6)

    def test_majority_converges_to_consensus(self):
        assert iterate_mean_field(majority(3), 0.6, 60)[-1] == pytest.approx(1.0, abs=1e-9)
        assert iterate_mean_field(majority(3), 0.4, 60)[-1] == pytest.approx(0.0, abs=1e-9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            iterate_mean_field(minority(3), 1.5, 10)
        with pytest.raises(ValueError):
            iterate_mean_field(minority(3), 0.5, -1)

    def test_overshoot_mechanism_visible(self):
        """Large-ell minority from near-0 overshoots past 1/2 in one step."""
        protocol = minority(101)
        p1 = mean_field_map(protocol, 0.05)
        assert p1 > 0.9  # nearly everyone adopts the minority opinion


class TestTracking:
    def test_simulation_tracks_mean_field(self, rng):
        """Prop 5 at the trajectory level: gap stays O(sqrt(t/n))."""
        n = 100_000
        protocol = minority(3)
        config = Configuration(n=n, z=1, x0=int(0.2 * n))
        result = simulate(protocol, config, 40, rng, record=True)
        gaps = tracking_error(protocol, n, 1, result.trajectory)
        horizon = len(gaps)
        assert gaps.max() < 10 * np.sqrt(horizon / n) + 1e-3

    def test_tracking_validation(self):
        with pytest.raises(ValueError):
            tracking_error(minority(3), 100, 1, np.array([]))
