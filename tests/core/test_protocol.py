"""Unit tests for the Protocol abstraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import Protocol, ProtocolFamily, constant_family
from repro.protocols import majority, minority, random_protocol, voter


class TestConstruction:
    def test_valid_table_accepted(self):
        protocol = Protocol(ell=2, g0=[0.0, 0.5, 1.0], g1=[0.0, 0.5, 1.0])
        assert protocol.ell == 2

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Protocol(ell=3, g0=[0.0, 1.0], g1=[0.0, 0.5, 1.0, 1.0])

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            Protocol(ell=1, g0=[0.0, 1.5], g1=[0.0, 1.0])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            Protocol(ell=1, g0=[-0.2, 1.0], g1=[0.0, 1.0])

    def test_zero_sample_size_rejected(self):
        with pytest.raises(ValueError, match="ell"):
            Protocol(ell=0, g0=[0.0], g1=[1.0])

    def test_tables_are_read_only(self):
        protocol = voter(3)
        with pytest.raises(ValueError):
            protocol.g0[0] = 0.5

    def test_tiny_float_noise_is_clipped(self):
        protocol = Protocol(ell=1, g0=[-1e-15, 1.0], g1=[0.0, 1.0 + 1e-15])
        assert protocol.g0[0] == 0.0
        assert protocol.g1[1] == 1.0


class TestStructuralProperties:
    def test_voter_satisfies_boundary_conditions(self):
        assert voter(4).satisfies_boundary_conditions()

    def test_minority_satisfies_boundary_conditions(self):
        assert minority(5).satisfies_boundary_conditions()

    def test_violating_protocol_detected(self):
        bad = Protocol(ell=1, g0=[0.1, 1.0], g1=[0.0, 1.0])
        assert not bad.satisfies_boundary_conditions()

    def test_voter_is_oblivious(self):
        assert voter(2).is_oblivious()

    def test_minority_even_stay_tiebreak_not_oblivious(self):
        assert not minority(4, tie_break="stay").is_oblivious()

    def test_voter_is_opinion_symmetric(self):
        assert voter(3).is_opinion_symmetric()

    def test_minority_is_opinion_symmetric(self):
        assert minority(3).is_opinion_symmetric()
        assert minority(4).is_opinion_symmetric()

    def test_adopt_one_tiebreak_breaks_symmetry(self):
        assert not minority(4, tie_break="adopt-one").is_opinion_symmetric()

    def test_flip_is_involution(self):
        protocol = minority(4, tie_break="adopt-one")
        double_flip = protocol.flip().flip()
        np.testing.assert_allclose(double_flip.g0, protocol.g0)
        np.testing.assert_allclose(double_flip.g1, protocol.g1)

    def test_symmetric_protocol_equals_own_flip(self):
        protocol = minority(3)
        flipped = protocol.flip()
        np.testing.assert_allclose(flipped.g0, protocol.g0)
        np.testing.assert_allclose(flipped.g1, protocol.g1)


class TestResponseProbabilities:
    def test_voter_response_is_identity(self):
        protocol = voter(3)
        grid = np.linspace(0.0, 1.0, 9)
        p0, p1 = protocol.response_probabilities(grid)
        np.testing.assert_allclose(p0, grid, atol=1e-12)
        np.testing.assert_allclose(p1, grid, atol=1e-12)

    def test_scalar_input_gives_scalars(self):
        p0, p1 = voter(2).response_probabilities(0.3)
        assert isinstance(p0, float) and isinstance(p1, float)
        assert p0 == pytest.approx(0.3)

    def test_endpoints_follow_boundary_entries(self):
        protocol = minority(3)
        p0_at_0, p1_at_0 = protocol.response_probabilities(0.0)
        p0_at_1, p1_at_1 = protocol.response_probabilities(1.0)
        assert p0_at_0 == 0.0 and p1_at_0 == 0.0
        assert p0_at_1 == 1.0 and p1_at_1 == 1.0

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            voter(1).response_probabilities(1.2)

    def test_minority_ell3_closed_form(self):
        # P(adopt 1 | p) = 3 p (1-p)^2 + p^3 for minority at ell = 3.
        protocol = minority(3)
        grid = np.linspace(0.0, 1.0, 21)
        expected = 3 * grid * (1 - grid) ** 2 + grid**3
        p0, p1 = protocol.response_probabilities(grid)
        np.testing.assert_allclose(p0, expected, atol=1e-12)
        np.testing.assert_allclose(p1, expected, atol=1e-12)

    @given(st.integers(min_value=1, max_value=8), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_responses_are_probabilities(self, ell, p):
        rng = np.random.default_rng(ell * 1000 + int(p * 997))
        protocol = random_protocol(ell, rng, solving=False)
        p0, p1 = protocol.response_probabilities(p)
        assert -1e-12 <= p0 <= 1 + 1e-12
        assert -1e-12 <= p1 <= 1 + 1e-12

    def test_monotone_table_gives_monotone_response(self):
        # Majority's table is monotone in k, so P_b is monotone in p.
        protocol = majority(5)
        grid = np.linspace(0.0, 1.0, 33)
        p0, _ = protocol.response_probabilities(grid)
        assert np.all(np.diff(p0) >= -1e-12)


class TestProtocolFamily:
    def test_constant_family_returns_same_protocol(self):
        protocol = voter(1)
        family = constant_family(protocol)
        assert family.at(10) is protocol
        assert family.at(1000) is protocol

    def test_family_rejects_tiny_population(self):
        family = constant_family(voter(1))
        with pytest.raises(ValueError, match="n"):
            family.at(1)

    def test_family_type_checks_factory_output(self):
        family = ProtocolFamily(factory=lambda n: "nope", name="bad")
        with pytest.raises(TypeError):
            family.at(10)
