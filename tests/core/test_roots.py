"""Tests of root finding and sign profiling of the bias polynomial."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bias import bias_value
from repro.core.roots import is_zero_bias, sign_profile, unit_interval_roots
from repro.protocols import (
    biased_voter,
    double_lobe,
    minority,
    random_protocol,
    voter,
    voter_minority_blend,
)


class TestZeroBiasDetection:
    def test_voter_detected_for_all_sample_sizes(self):
        for ell in (1, 2, 5, 9):
            assert is_zero_bias(voter(ell))

    def test_minority_not_zero_bias(self):
        assert not is_zero_bias(minority(3))

    def test_blend_degenerates_to_voter_at_weight_zero(self):
        assert is_zero_bias(voter_minority_blend(3, 0.0))
        assert not is_zero_bias(voter_minority_blend(3, 0.25))

    def test_tiny_but_nonzero_bias_detected(self):
        protocol = biased_voter(3, 1, 1e-6)
        assert not is_zero_bias(protocol, tolerance=1e-9)


class TestUnitIntervalRoots:
    def test_minority_odd_ell_has_root_at_half(self):
        for ell in (3, 5, 7):
            roots = unit_interval_roots(minority(ell))
            assert roots[0] == pytest.approx(0.0, abs=1e-9)
            assert roots[-1] == pytest.approx(1.0, abs=1e-9)
            assert any(abs(r - 0.5) < 1e-7 for r in roots), roots

    def test_double_lobe_interior_root_placement(self):
        for target in (0.2, 0.37, 0.61, 0.8):
            roots = unit_interval_roots(double_lobe(target))
            interior = [r for r in roots if 1e-6 < r < 1 - 1e-6]
            assert len(interior) == 1
            assert interior[0] == pytest.approx(target, abs=1e-6)

    def test_biased_voter_has_only_endpoint_roots(self):
        roots = unit_interval_roots(biased_voter(3, 1, 0.2))
        assert roots == pytest.approx([0.0, 1.0], abs=1e-9)

    def test_roots_sorted_and_inside_unit_interval(self):
        roots = unit_interval_roots(minority(5))
        assert roots == sorted(roots)
        assert all(0.0 <= r <= 1.0 for r in roots)

    def test_zero_bias_protocol_rejected(self):
        with pytest.raises(ValueError, match="identically zero"):
            unit_interval_roots(voter(2))

    def test_large_ell_guarded(self):
        with pytest.raises(ValueError, match="ell"):
            unit_interval_roots(minority(41))

    @given(st.integers(min_value=1, max_value=7), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_bias_vanishes_at_every_reported_root(self, ell, seed):
        protocol = random_protocol(ell, np.random.default_rng(seed), solving=True)
        if is_zero_bias(protocol):
            return
        for root in unit_interval_roots(protocol):
            assert abs(bias_value(protocol, root)) < 1e-6


class TestSignProfile:
    def test_minority_profile(self):
        profile = sign_profile(minority(3))
        assert profile.signs == (1, -1)
        assert profile.roots[1] == pytest.approx(0.5, abs=1e-9)

    def test_minority_last_interval(self):
        profile = sign_profile(minority(3))
        left, right = profile.last_interval
        assert left == pytest.approx(0.5, abs=1e-9)
        assert right == pytest.approx(1.0, abs=1e-9)
        assert profile.last_interval_sign == -1

    def test_positive_lobe_profile(self):
        profile = sign_profile(biased_voter(3, 1, 0.2))
        assert profile.signs == (1,)
        assert profile.last_interval_sign == 1

    def test_double_lobe_profile(self):
        profile = sign_profile(double_lobe(0.3))
        assert profile.signs == (1, -1)

    @given(st.integers(min_value=1, max_value=6), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_sign_matches_midpoint_evaluation(self, ell, seed):
        protocol = random_protocol(ell, np.random.default_rng(seed), solving=True)
        if is_zero_bias(protocol):
            return
        profile = sign_profile(protocol)
        for (left, right), sign in zip(
            zip(profile.roots[:-1], profile.roots[1:]), profile.signs
        ):
            midpoint_value = bias_value(protocol, (left + right) / 2)
            if sign == 1:
                assert midpoint_value > -1e-9
            elif sign == -1:
                assert midpoint_value < 1e-9

    def test_profile_spans_zero_to_one(self):
        profile = sign_profile(minority(5))
        assert profile.roots[0] == pytest.approx(0.0, abs=1e-9)
        assert profile.roots[-1] == pytest.approx(1.0, abs=1e-9)
