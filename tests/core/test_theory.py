"""Tests of the closed-form paper predictions."""

from __future__ import annotations

import math

import pytest

from repro.core.theory import (
    PREDICTIONS,
    lower_bound_rounds,
    minority_sqrt_sample_size,
    minority_sqrt_upper_bound_rounds,
    sequential_lower_bound_rounds,
    sequential_voter_upper_bound_rounds,
    voter_upper_bound_rounds,
    whp_failure_rate,
)


class TestFormulas:
    def test_lower_bound_shape(self):
        assert lower_bound_rounds(10_000, 0.5) == pytest.approx(100.0)
        assert lower_bound_rounds(10_000, 0.25) > lower_bound_rounds(10_000, 0.5)
        with pytest.raises(ValueError):
            lower_bound_rounds(100, 0.0)

    def test_voter_upper_bound(self):
        n = 1000
        assert voter_upper_bound_rounds(n) == pytest.approx(2 * n * math.log(n))
        with pytest.raises(ValueError):
            voter_upper_bound_rounds(1)

    def test_minority_sample_size_is_odd_and_grows(self):
        sizes = [minority_sqrt_sample_size(n) for n in (100, 1000, 10_000)]
        assert all(s % 2 == 1 for s in sizes)
        assert sizes == sorted(sizes)
        assert sizes[0] >= math.sqrt(100 * math.log(100))

    def test_minority_upper_bound_is_polylog(self):
        assert minority_sqrt_upper_bound_rounds(10**6) < 10**3

    def test_sequential_bounds_order(self):
        n = 512
        assert sequential_lower_bound_rounds(n) <= sequential_voter_upper_bound_rounds(n)

    def test_whp_failure_rate(self):
        assert whp_failure_rate(100) == pytest.approx(0.01)
        assert whp_failure_rate(100, exponent=2) == pytest.approx(1e-4)


class TestPredictionRegistry:
    def test_all_core_claims_present(self):
        identifiers = {p.identifier for p in PREDICTIONS}
        assert {"thm1", "thm2", "minority-sqrt", "sequential", "prop3", "prop4"} <= identifiers

    def test_predictions_carry_shapes(self):
        for prediction in PREDICTIONS:
            assert prediction.statement
            assert prediction.shape
