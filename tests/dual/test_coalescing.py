"""Tests for the coalescing-random-walk dual (Appendix B / Theorem 2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dual.coalescing import (
    coalescence_profile,
    dual_absorption_times,
    paired_forward_dual_run,
)


class TestAbsorptionTimes:
    def test_source_absorbed_immediately(self, rng):
        times = dual_absorption_times(50, 1000, rng)
        assert times[0] == 0

    def test_all_absorbed_within_theorem2_horizon(self, rng_factory):
        """Theorem 2's quantitative core: T = 2 n ln n absorbs everyone w.h.p."""
        n = 200
        horizon = int(2 * n * math.log(n))
        failures = 0
        for i in range(20):
            times = dual_absorption_times(n, horizon, rng_factory(i))
            if (times < 0).any():
                failures += 1
        assert failures <= 1  # w.h.p. with failure ~ 1/n per run

    def test_single_walker_absorption_is_geometric(self, rng_factory):
        """Each walker hits the source at rate 1/n per round."""
        n = 60
        samples = []
        for i in range(400):
            times = dual_absorption_times(n, 10**5, rng_factory(i))
            samples.append(times[1])  # walker of agent 1
        mean = np.mean(samples)
        # Geometric with success 1/n: mean n, std ~ n.
        assert abs(mean - n) < 5 * n / math.sqrt(len(samples)) + 1.0

    def test_budget_censoring(self, rng):
        times = dual_absorption_times(500, 1, rng)
        assert (times < 0).any()  # one round cannot absorb 499 walkers


class TestCoalescenceProfile:
    def test_profile_shape(self, rng):
        n = 100
        profile = coalescence_profile(n, 10**5, rng)
        assert profile[0] == n - 1
        assert profile[-1] == 0
        # Distinct positions can only merge or be absorbed: non-increasing.
        assert np.all(np.diff(profile) <= 0)

    def test_profile_collapse_time_scales_near_n_log_n(self, rng_factory):
        """The dual collapse time is O(n log n) (Theorem 2's shape)."""
        ratios = []
        for n in (64, 128, 256):
            collapse_times = []
            for i in range(5):
                profile = coalescence_profile(n, 50 * n * int(math.log(n)), rng_factory(n + i))
                collapse_times.append(len(profile) - 1)
            ratios.append(np.median(collapse_times) / (n * math.log(n)))
        # Bounded ratios across a 4x sweep of n.
        assert max(ratios) / min(ratios) < 4.0


class TestExactDuality:
    @pytest.mark.parametrize("z", [0, 1])
    def test_eq17_on_shared_randomness(self, z, rng_factory):
        """Dual-absorbed agents hold the correct opinion — exactly, per run."""
        n = 80
        for i in range(30):
            rng = rng_factory(i)
            initial = rng.integers(0, 2, size=n).astype(np.int8)
            run = paired_forward_dual_run(initial, z, horizon=40, rng=rng)
            assert run.duality_holds()

    def test_all_absorbed_implies_consensus(self, rng_factory):
        n = 60
        horizon = int(3 * n * math.log(n))
        for i in range(10):
            rng = rng_factory(100 + i)
            initial = rng.integers(0, 2, size=n).astype(np.int8)
            run = paired_forward_dual_run(initial, 1, horizon, rng)
            if run.all_absorbed():
                assert run.consensus_reached()

    def test_worst_case_initialization(self, rng):
        """From all-wrong opinions, consensus via the dual still works."""
        n = 100
        horizon = int(2 * n * math.log(n))
        initial = np.zeros(n, dtype=np.int8)  # z = 1: everyone wrong
        run = paired_forward_dual_run(initial, 1, horizon, rng)
        if run.all_absorbed():
            assert run.consensus_reached()
        assert run.duality_holds()

    def test_input_validation(self, rng):
        with pytest.raises(ValueError, match="agents"):
            paired_forward_dual_run(np.array([1], dtype=np.int8), 1, 10, rng)
        with pytest.raises(ValueError, match="z"):
            paired_forward_dual_run(np.zeros(5, dtype=np.int8), 2, 10, rng)
