"""Statistical properties of the coalescing dual beyond the basic checks."""

from __future__ import annotations

import math

import numpy as np

from repro.dual.coalescing import dual_absorption_times, paired_forward_dual_run
from repro.dynamics.rng import make_rng, spawn_rngs


class TestAbsorptionDistribution:
    def test_max_absorption_concentrates_near_n_log_n(self):
        """The slowest walker is a maximum of ~n geometrics(1/n): its median
        sits near ``n ln n`` (within a modest constant)."""
        n = 150
        horizon = 40 * n * int(math.log(n))
        maxima = []
        for rng in spawn_rngs(3, 30):
            times = dual_absorption_times(n, horizon, rng)
            assert (times >= 0).all()
            maxima.append(times.max())
        median_max = float(np.median(maxima))
        reference = n * math.log(n)
        assert 0.3 * reference < median_max < 3.0 * reference

    def test_absorption_times_are_exchangeable(self):
        """Walkers are exchangeable: per-agent mean absorption times agree
        across agents (up to noise) when averaged over runs."""
        n = 40
        totals = np.zeros(n)
        runs = 200
        for rng in spawn_rngs(9, runs):
            totals += dual_absorption_times(n, 10**5, rng)
        means = totals[1:] / runs  # skip the source (always 0)
        spread = means.max() / means.min()
        assert spread < 2.0

    def test_duality_transfers_partial_absorption(self):
        """With a horizon too short for full absorption, Eq. 17 still pins
        exactly the absorbed agents' opinions — partial progress is real
        progress."""
        n = 300
        horizon = n // 2  # far too short to absorb everyone
        rng = make_rng(31)
        initial = rng.integers(0, 2, size=n).astype(np.int8)
        run = paired_forward_dual_run(initial, z=1, horizon=horizon, rng=rng)
        absorbed = run.absorption >= 0
        assert 0 < absorbed.sum() < n  # genuinely partial
        assert np.all(run.final_opinions[absorbed] == 1)
