"""Tests for the batched engine: the docs/ENGINES.md contract, enforced.

Three tiers, mirroring the backend contract:

* **bit-identity** where it is promised — ``loop`` vs ``batched`` (and the
  supervised composition of either) must agree to the bit;
* **statistical equivalence** where only that is promised — ``batched`` vs
  ``lockstep`` share a distribution, not a stream, so a KS test is the
  right comparison;
* **batch-membership independence** — replica ``j``'s trajectory is a
  function of the seed and ``j``, never of how many replicas ride along.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import binom, ks_2samp

from repro.analysis.ensemble import convergence_ensemble
from repro.dynamics.batched import (
    DEFAULT_ENGINE,
    ENGINES,
    HAVE_NUMBA,
    binomial_icdf,
    counter_uniforms,
    engine_family,
    replica_keys,
    resolve_engine,
    step_count_keyed,
    step_counts_keyed,
)
from repro.dynamics.config import Configuration, wrong_consensus_configuration
from repro.dynamics.rng import make_rng, spawn_seed_sequences
from repro.dynamics.run import simulate_ensemble
from repro.protocols import minority, voter


class TestEngineRegistry:
    def test_default_is_batched(self):
        assert DEFAULT_ENGINE == "batched"
        assert resolve_engine(None) == "batched"

    def test_every_listed_engine_resolves(self):
        for name in ENGINES:
            assert resolve_engine(name) in ENGINES

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp")
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_ensemble(
                voter(1), Configuration(n=20, z=1, x0=10), 5, make_rng(0), 3,
                engine="warp",
            )

    def test_numba_falls_back_to_batched_when_absent(self):
        resolved = resolve_engine("batched+numba")
        if HAVE_NUMBA:
            assert resolved == "batched+numba"
        else:
            assert resolved == "batched"
        # Either way the stream identity is the batched family.
        assert engine_family(resolved) == "batched"

    def test_numba_request_runs_and_matches_batched(self):
        config = wrong_consensus_configuration(64, 1)
        a = simulate_ensemble(
            voter(1), config, 2000, make_rng(5), 6, engine="batched+numba"
        )
        b = simulate_ensemble(voter(1), config, 2000, make_rng(5), 6, engine="batched")
        np.testing.assert_array_equal(a, b)


class TestReplicaKeys:
    def test_batch_size_independent(self):
        assert np.array_equal(replica_keys(123, 4), replica_keys(123, 16)[:4])

    def test_matches_spawn_tree(self):
        children = spawn_seed_sequences(123, 3)
        expected = [child.generate_state(1, np.uint64)[0] for child in children]
        assert replica_keys(123, 3).tolist() == expected

    def test_generator_seed_is_deterministic(self):
        assert np.array_equal(
            replica_keys(make_rng(9), 5), replica_keys(make_rng(9), 5)
        )

    def test_distinct_keys(self):
        keys = replica_keys(0, 1000)
        assert len(np.unique(keys)) == 1000


class TestCounterUniforms:
    def test_range_and_determinism(self):
        keys = replica_keys(1, 256)
        u = counter_uniforms(keys, 7, 0)
        assert ((0.0 <= u) & (u < 1.0)).all()
        assert np.array_equal(u, counter_uniforms(keys, 7, 0))

    def test_rounds_and_draws_decorrelated(self):
        keys = replica_keys(1, 256)
        assert not np.array_equal(counter_uniforms(keys, 7, 0), counter_uniforms(keys, 8, 0))
        assert not np.array_equal(counter_uniforms(keys, 7, 0), counter_uniforms(keys, 7, 1))

    def test_elementwise(self):
        keys = replica_keys(2, 64)
        full = counter_uniforms(keys, 3, 1)
        assert np.array_equal(counter_uniforms(keys[10:20], 3, 1), full[10:20])

    def test_marginally_uniform(self):
        # One value per key: across many keys the marginal must be U[0,1).
        keys = replica_keys(3, 20_000)
        u = counter_uniforms(keys, 1, 0)
        from scipy.stats import kstest

        assert kstest(u, "uniform").pvalue > 1e-4


class TestBinomialICDF:
    def test_matches_scipy_on_interior_u(self):
        rng = np.random.default_rng(42)
        for _ in range(4):
            m = rng.integers(0, 10**6, 2000)
            p = rng.random(2000)
            u = rng.uniform(1e-12, 1.0 - 1e-12, 2000)
            k = binomial_icdf(u, m, p)
            np.testing.assert_array_equal(k, binom.ppf(u, m, p).astype(np.int64))

    def test_is_minimal_inverse(self):
        # Directly assert min {k : CDF(k) >= u}, including extreme u where
        # scipy's own search loosens: CDF(k) >= u and CDF(k-1) < u.
        from scipy import special

        rng = np.random.default_rng(7)
        m = rng.integers(1, 10**5, 500)
        p = rng.uniform(1e-6, 1 - 1e-6, 500)
        u = np.concatenate([rng.random(496), [1e-300, 2**-53, 1 - 2**-53, 0.5]])
        k = binomial_icdf(u, m, p)
        assert (special.bdtr(k, m, p) >= u).all()
        positive = k > 0
        assert (special.bdtr(k[positive] - 1, m[positive], p[positive]) < u[positive]).all()

    def test_degenerate_corners(self):
        u = np.array([0.0, 0.5, 0.5, 0.5, 0.9])
        m = np.array([10, 0, 10, 10, 10])
        p = np.array([0.5, 0.5, 0.0, 1.0, 1.0])
        assert binomial_icdf(u, m, p).tolist() == [0, 0, 0, 10, 10]

    def test_elementwise(self):
        rng = np.random.default_rng(11)
        m = rng.integers(1, 10**4, 300)
        p = rng.random(300)
        u = rng.random(300)
        full = binomial_icdf(u, m, p)
        scalars = [int(binomial_icdf(u[j : j + 1], m[j : j + 1], p[j : j + 1])[0])
                   for j in range(0, 300, 17)]
        assert full[::17].tolist() == scalars


class TestBitIdentity:
    """The contract's strong tier: loop and batched share every bit."""

    def test_step_kernels_agree(self):
        protocol = minority(3)
        keys = replica_keys(4, 200)
        counts = np.arange(100, 300, dtype=np.int64)
        batch = step_counts_keyed(protocol, 1000, 1, counts, keys, 9)
        solo = [
            step_count_keyed(protocol, 1000, 1, int(counts[j]), keys[j], 9)
            for j in range(200)
        ]
        assert batch.tolist() == solo

    def test_loop_vs_batched_times(self):
        config = wrong_consensus_configuration(64, 1)
        batched = simulate_ensemble(
            voter(1), config, 3000, make_rng(21), 12, engine="batched"
        )
        loop = simulate_ensemble(voter(1), config, 3000, make_rng(21), 12, engine="loop")
        np.testing.assert_array_equal(batched, loop)

    def test_loop_vs_batched_convergence_stats(self):
        config = wrong_consensus_configuration(64, 1)
        a = convergence_ensemble(voter(1), config, 3000, make_rng(22), 10, engine="batched")
        b = convergence_ensemble(voter(1), config, 3000, make_rng(22), 10, engine="loop")
        assert a == b  # frozen dataclass: field-wise exact

    def test_supervised_shards_bit_identical_across_engines(self):
        from repro.execution.supervisor import SupervisorConfig, run_supervised_ensemble

        config = wrong_consensus_configuration(48, 1)
        results = [
            run_supervised_ensemble(
                voter(1), config, 2000, make_rng(31), 6,
                supervisor=SupervisorConfig(workers=2, shards=3),
                engine=engine,
            )
            for engine in ("batched", "loop")
        ]
        np.testing.assert_array_equal(results[0].times, results[1].times)
        assert all(r.failed_shards == 0 for r in results)


class TestBatchMembershipIndependence:
    def test_prefix_of_larger_ensemble_is_unchanged(self):
        # Same seed, different batch sizes: the shared replicas' times are
        # identical because each replica steps on its own keyed stream.
        config = wrong_consensus_configuration(64, 1)
        small = simulate_ensemble(voter(1), config, 3000, make_rng(77), 5)
        large = simulate_ensemble(voter(1), config, 3000, make_rng(77), 20)
        np.testing.assert_array_equal(small, large[:5])

    def test_lockstep_does_not_have_this_property(self):
        # Contrast: the legacy shared-Generator engine couples replicas, so
        # the same prefix changes with batch size — why batched is default.
        config = wrong_consensus_configuration(64, 1)
        small = simulate_ensemble(
            voter(1), config, 3000, make_rng(77), 5, engine="lockstep"
        )
        large = simulate_ensemble(
            voter(1), config, 3000, make_rng(77), 20, engine="lockstep"
        )
        assert not np.array_equal(small, large[:5], equal_nan=True)


class TestStatisticalEquivalence:
    """The contract's weak tier: keyed engines vs the legacy shared stream."""

    def test_batched_vs_lockstep_distributions_match(self):
        config = wrong_consensus_configuration(48, 1)
        budget = 4000
        batched = simulate_ensemble(
            voter(1), config, budget, make_rng(101), 300, engine="batched"
        )
        lockstep = simulate_ensemble(
            voter(1), config, budget, make_rng(202), 300, engine="lockstep"
        )
        assert np.isnan(batched).sum() < 15
        assert np.isnan(lockstep).sum() < 15
        result = ks_2samp(
            batched[~np.isnan(batched)], lockstep[~np.isnan(lockstep)]
        )
        assert result.pvalue > 1e-4

    def test_single_round_marginal_matches_exact_binomial(self):
        # One keyed round from a fixed count is exactly Binomial-distributed:
        # chi-square the empirical counts against the exact transition law.
        from scipy.stats import chisquare

        n, z, x = 30, 1, 15
        protocol = voter(1)
        keys = replica_keys(5, 20_000)
        counts = np.full(20_000, x, dtype=np.int64)
        out = step_counts_keyed(protocol, n, z, counts, keys, 1)
        from repro.markov.exact import transition_row

        law = transition_row(protocol, n, z, x)
        support = np.arange(law.size)
        observed = np.bincount(out, minlength=law.size).astype(float)
        keep = law * out.size >= 5  # chi-square validity
        stat = chisquare(
            np.append(observed[keep], observed[~keep].sum()),
            np.append(law[keep] * out.size, law[~keep].sum() * out.size),
        )
        assert stat.pvalue > 1e-4, (stat, support[keep])


class TestDurability:
    REPLICAS = 8
    BUDGET = 5000
    SEED = 7

    def _config(self):
        return wrong_consensus_configuration(96, 1)

    def test_checkpoint_resume_bit_identical_under_batched(self, tmp_path):
        from repro.execution import Checkpointer, GracefulExit, load_checkpoint

        class _StopAfterPolls:
            def __init__(self, polls):
                self.remaining = polls
                self.signum = 15
                self.flushed = False

            @property
            def requested(self):
                self.remaining -= 1
                return self.remaining <= 0

            def flush_registered(self):
                self.flushed = True

        baseline = simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, engine="batched",
        )
        path = tmp_path / "e.ckpt"
        with pytest.raises(GracefulExit):
            simulate_ensemble(
                voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
                self.REPLICAS, engine="batched",
                checkpoint=Checkpointer(path, every=5, guard=_StopAfterPolls(23)),
            )
        assert 0 < load_checkpoint(path).round < self.BUDGET
        resumed = simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, engine="batched",
            checkpoint=Checkpointer.resume(path, every=5),
        )
        np.testing.assert_array_equal(resumed, baseline)

    def test_engine_mismatch_refuses_resume(self, tmp_path):
        from repro.execution import CheckpointError, Checkpointer

        path = tmp_path / "e.ckpt"
        simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, engine="batched",
            checkpoint=Checkpointer(path, every=5),
        )
        with pytest.raises(CheckpointError, match="different run"):
            simulate_ensemble(
                voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
                self.REPLICAS, engine="lockstep",
                checkpoint=Checkpointer.resume(path, every=5),
            )


class TestTelemetryContract:
    def test_batched_engine_ticks_batch_and_replica_steps(self):
        from repro.telemetry import MetricsRecorder

        recorder = MetricsRecorder()
        simulate_ensemble(
            voter(1), wrong_consensus_configuration(48, 1), 500, make_rng(3), 6,
            recorder=recorder,
        )
        spans = recorder.metrics().spans
        assert "ensemble" in spans
        assert spans["ensemble"].counters["batch_steps"] >= 1
        assert spans["ensemble"].counters["replica_steps"] >= 6

    def test_provenance_records_engine(self, tmp_path):
        from repro.telemetry import JsonlTraceWriter, read_trace

        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(path) as writer:
            simulate_ensemble(
                voter(1), wrong_consensus_configuration(48, 1), 500,
                make_rng(3), 4, recorder=writer,
            )
        start = next(r for r in read_trace(path) if r.get("kind") == "run_start")
        assert start["params"]["engine"] == "batched"
