"""Tests for configurations and adversarial initializers."""

from __future__ import annotations

import pytest

from repro.dynamics.config import (
    Configuration,
    adversarial_configurations,
    balanced_configuration,
    consensus_configuration,
    wrong_consensus_configuration,
)


class TestConfiguration:
    def test_valid_configuration(self):
        config = Configuration(n=10, z=1, x0=5)
        assert config.target_count == 10
        assert config.fraction == 0.5
        assert not config.is_converged

    def test_source_constrains_count_range(self):
        # z = 1 means the source holds 1, so x0 >= 1.
        with pytest.raises(ValueError, match="x0"):
            Configuration(n=10, z=1, x0=0)
        # z = 0 means x0 <= n - 1.
        with pytest.raises(ValueError, match="x0"):
            Configuration(n=10, z=0, x0=10)

    def test_invalid_z(self):
        with pytest.raises(ValueError, match="z"):
            Configuration(n=10, z=2, x0=5)

    def test_tiny_population_rejected(self):
        with pytest.raises(ValueError, match="n"):
            Configuration(n=1, z=0, x0=0)

    def test_count_bounds(self):
        assert Configuration.count_bounds(10, 0) == (0, 9)
        assert Configuration.count_bounds(10, 1) == (1, 10)


class TestInitializers:
    def test_consensus(self):
        assert consensus_configuration(10, 1).x0 == 10
        assert consensus_configuration(10, 0).x0 == 0
        assert consensus_configuration(10, 1).is_converged

    def test_wrong_consensus(self):
        # z = 1: only the source holds 1.
        assert wrong_consensus_configuration(10, 1).x0 == 1
        # z = 0: everyone but the source holds 1.
        assert wrong_consensus_configuration(10, 0).x0 == 9

    def test_balanced(self):
        assert balanced_configuration(10, 1).x0 == 5

    def test_adversarial_panel_is_valid_and_covers_both_sources(self):
        panel = adversarial_configurations(100)
        assert len(panel) >= 6
        assert {c.z for c in panel} == {0, 1}
        for config in panel:
            low, high = Configuration.count_bounds(config.n, config.z)
            assert low <= config.x0 <= high

    def test_adversarial_panel_includes_wrong_consensus(self):
        panel = adversarial_configurations(64)
        assert any(
            c.x0 == wrong_consensus_configuration(64, c.z).x0 for c in panel
        )
