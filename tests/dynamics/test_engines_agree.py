"""Cross-validation of the three realizations of one parallel round.

The count-level engine (O(1) binomials), the agent-level engine (literal
model transcription) and the exact transition row (binomial convolution)
describe the same conditional law of ``X_{t+1}``.  These tests compare them
pairwise: empirical distributions against the exact row via a chi-squared
goodness-of-fit, and the two samplers against each other via moments.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import chisquare

from repro.core.bias import expected_next_count
from repro.dynamics.agentwise import initial_opinions, step_opinions
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count, step_counts_batch
from repro.markov.exact import transition_row
from repro.protocols import majority, minority, voter

CASES = [
    (voter(1), 40, 1, 13),
    (voter(3), 40, 0, 20),
    (minority(3), 50, 1, 30),
    (minority(4), 50, 1, 25),
    (majority(3), 40, 0, 18),
]
TRIALS = 6000


def _chi_squared_pvalue(samples: np.ndarray, row: np.ndarray) -> float:
    """Goodness-of-fit of integer samples against an exact pmf."""
    n_states = len(row)
    observed = np.bincount(samples, minlength=n_states).astype(float)
    expected = row * len(samples)
    # Pool low-expectation bins to keep the chi-squared approximation valid.
    keep = expected >= 5
    pooled_observed = np.append(observed[keep], observed[~keep].sum())
    pooled_expected = np.append(expected[keep], expected[~keep].sum())
    if pooled_expected[-1] == 0:
        pooled_observed = pooled_observed[:-1]
        pooled_expected = pooled_expected[:-1]
    statistic, pvalue = chisquare(pooled_observed, pooled_expected)
    return float(pvalue)


class TestCountEngineAgainstExactRow:
    @pytest.mark.parametrize("protocol,n,z,x", CASES, ids=[c[0].name for c in CASES])
    def test_chi_squared(self, protocol, n, z, x, rng):
        samples = np.array(
            [step_count(protocol, n, z, x, rng) for _ in range(TRIALS)]
        )
        row = transition_row(protocol, n, z, x)
        assert _chi_squared_pvalue(samples, row) > 1e-4


class TestAgentEngineAgainstExactRow:
    @pytest.mark.parametrize("protocol,n,z,x", CASES, ids=[c[0].name for c in CASES])
    def test_chi_squared(self, protocol, n, z, x, rng):
        config = Configuration(n=n, z=z, x0=x)
        samples = np.empty(TRIALS, dtype=np.int64)
        for i in range(TRIALS):
            opinions = initial_opinions(config, rng)
            samples[i] = step_opinions(protocol, z, opinions, rng).sum()
        row = transition_row(protocol, n, z, x)
        assert _chi_squared_pvalue(samples, row) > 1e-4


class TestBatchEngine:
    def test_batch_matches_scalar_in_moments(self, rng):
        protocol = minority(3)
        n, z, x = 200, 1, 120
        batch = step_counts_batch(protocol, n, z, np.full(4000, x), rng)
        analytic_mean = expected_next_count(protocol, n, z, x)
        standard_error = batch.std() / np.sqrt(len(batch))
        assert abs(batch.mean() - analytic_mean) < 5 * standard_error + 1e-9

    def test_batch_handles_mixed_states(self, rng):
        protocol = voter(1)
        n, z = 100, 1
        counts = np.array([1, 50, 99, 100])
        result = step_counts_batch(protocol, n, z, counts, rng)
        assert result.shape == counts.shape
        assert np.all(result >= z) and np.all(result <= n)

    def test_batch_rejects_out_of_range(self, rng):
        with pytest.raises(ValueError, match="counts"):
            step_counts_batch(voter(1), 100, 1, np.array([0, 50]), rng)


class TestConservationLaws:
    def test_count_stays_in_admissible_range(self, rng):
        protocol = minority(3)
        n, z = 64, 0
        x = 32
        for _ in range(200):
            x = step_count(protocol, n, z, x, rng)
            assert 0 <= x <= n - 1  # z = 0: the source never holds 1

    def test_consensus_absorbing_for_compliant_protocols(self, rng):
        for protocol in (voter(1), minority(3), majority(3)):
            assert step_count(protocol, 100, 1, 100, rng) == 100
            assert step_count(protocol, 100, 0, 0, rng) == 0

    def test_source_pinned_in_agent_engine(self, rng):
        protocol = voter(1)
        config = Configuration(n=30, z=1, x0=1)
        opinions = initial_opinions(config, rng)
        for _ in range(20):
            opinions = step_opinions(protocol, 1, opinions, rng)
            assert opinions[0] == 1

    def test_initial_opinions_realize_configuration(self, rng):
        config = Configuration(n=50, z=0, x0=20)
        opinions = initial_opinions(config, rng)
        assert opinions.sum() == 20
        assert opinions[0] == 0
