"""Tests for neighbour-sampling dynamics on graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.graphs import (
    complete_graph,
    cycle_graph,
    neighbor_table,
    random_regular_graph,
    simulate_on_graph,
    star_graph,
    step_opinions_on_graph,
)
from repro.protocols import minority, voter


class TestNeighborTable:
    def test_complete_graph_table(self):
        table = neighbor_table(complete_graph(5))
        assert len(table) == 5
        assert sorted(table[0].tolist()) == [1, 2, 3, 4]

    def test_isolated_node_rejected(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1)
        with pytest.raises(ValueError, match="isolated"):
            neighbor_table(graph)

    def test_bad_labels_rejected(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ValueError, match="0..n-1"):
            neighbor_table(graph)

    def test_star_graph_convention(self):
        graph = star_graph(6)
        table = neighbor_table(graph)
        # Node 1 is the hub: connected to everyone else.
        assert len(table[1]) == 5
        # The source (node 0) is a leaf attached to the hub.
        assert table[0].tolist() == [1]


class TestStep:
    def test_source_pinned(self, rng):
        graph = cycle_graph(12)
        table = neighbor_table(graph)
        opinions = np.zeros(12, dtype=np.int8)
        opinions[0] = 1
        for _ in range(10):
            opinions = step_opinions_on_graph(voter(1), 1, opinions, table, rng)
            assert opinions[0] == 1

    def test_unanimous_neighbourhood_is_followed(self, rng):
        """With Prop-3-compliant rules, an all-1 graph (z=1) stays all-1."""
        graph = cycle_graph(10)
        table = neighbor_table(graph)
        opinions = np.ones(10, dtype=np.int8)
        for _ in range(10):
            opinions = step_opinions_on_graph(minority(3), 1, opinions, table, rng)
            assert opinions.sum() == 10

    def test_complete_graph_close_to_well_mixed(self, rng_factory):
        """Sampling neighbours on K_n differs from the paper's model only by
        excluding self-samples; one-step means match to O(1/n)."""
        from repro.core.bias import expected_next_count

        n, z, x = 60, 1, 30
        table = neighbor_table(complete_graph(n))
        rng = rng_factory(0)
        totals = []
        for _ in range(800):
            opinions = np.zeros(n, dtype=np.int8)
            opinions[:x] = 1
            opinions[0] = z
            stepped = step_opinions_on_graph(voter(1), z, opinions, table, rng)
            totals.append(int(stepped.sum()))
        mean_field = float(expected_next_count(voter(1), n, z, x))
        standard_error = np.std(totals) / np.sqrt(len(totals))
        assert abs(np.mean(totals) - mean_field) < 5 * standard_error + 1.5


class TestSimulate:
    def test_voter_converges_on_cycle(self, rng):
        n = 24
        initial = np.zeros(n, dtype=np.int8)
        rounds = simulate_on_graph(voter(1), cycle_graph(n), 1, initial, 100_000, rng)
        assert rounds is not None

    def test_voter_converges_on_random_regular(self, rng):
        n = 50
        initial = np.zeros(n, dtype=np.int8)
        rounds = simulate_on_graph(
            voter(1), random_regular_graph(n, 4, seed=1), 1, initial, 100_000, rng
        )
        assert rounds is not None

    def test_cycle_slower_than_complete(self, rng_factory):
        """Topology costs: the cycle's diameter slows the Voter down by a
        polynomial factor relative to the complete graph."""
        n = 32
        trials = 5

        def median_rounds(graph_builder, seed_base):
            times = []
            for i in range(trials):
                initial = np.zeros(n, dtype=np.int8)
                rounds = simulate_on_graph(
                    voter(1), graph_builder(n), 1, initial, 10**6, rng_factory(seed_base + i)
                )
                assert rounds is not None
                times.append(rounds)
            return float(np.median(times))

        complete_time = median_rounds(complete_graph, 0)
        cycle_time = median_rounds(cycle_graph, 100)
        assert cycle_time > 2 * complete_time

    def test_prop3_violator_rejected(self, rng):
        from repro.core.protocol import Protocol

        bad = Protocol(ell=1, g0=[0.5, 1.0], g1=[0.0, 1.0])
        with pytest.raises(ValueError, match="Proposition 3"):
            simulate_on_graph(bad, cycle_graph(6), 1, np.zeros(6, dtype=np.int8), 5, rng)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="does not match"):
            simulate_on_graph(
                voter(1), cycle_graph(6), 1, np.zeros(5, dtype=np.int8), 5, rng
            )
