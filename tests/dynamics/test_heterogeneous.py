"""Tests for heterogeneous (two-protocol) populations."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.dynamics.engine import step_count
from repro.dynamics.heterogeneous import (
    MixedState,
    initial_mixed_state,
    simulate_mixed,
    step_mixed,
)
from repro.protocols import minority, voter


class TestState:
    def test_validation(self):
        with pytest.raises(ValueError, match="ones_a"):
            MixedState(n=10, z=1, size_a=4, ones_a=5, ones_b=0)
        with pytest.raises(ValueError, match="ones_b"):
            MixedState(n=10, z=1, size_a=4, ones_a=0, ones_b=6)
        with pytest.raises(ValueError, match="size_a"):
            MixedState(n=10, z=1, size_a=10, ones_a=0, ones_b=0)

    def test_totals(self):
        state = initial_mixed_state(n=20, z=1, size_a=10, ones_a=4, ones_b=3)
        assert state.total_ones == 8
        assert state.size_b == 9


class TestStep:
    def test_counts_stay_in_bounds(self, rng):
        state = initial_mixed_state(n=50, z=0, size_a=20, ones_a=10, ones_b=15)
        for _ in range(100):
            state = step_mixed(voter(1), minority(3), state, rng)
            assert 0 <= state.ones_a <= 20
            assert 0 <= state.ones_b <= 29

    def test_pure_mixture_matches_homogeneous_engine(self, rng_factory):
        """A/B both Voter: the total count has the homogeneous law."""
        n, z = 40, 1
        rng_a, rng_b = rng_factory(0), rng_factory(1)
        mixed_totals = []
        for _ in range(3000):
            state = initial_mixed_state(n=n, z=z, size_a=19, ones_a=12, ones_b=12)
            stepped = step_mixed(voter(1), voter(1), state, rng_a)
            mixed_totals.append(stepped.total_ones)
        homogeneous = [step_count(voter(1), n, z, 25, rng_b) for _ in range(3000)]
        assert ks_2samp(mixed_totals, homogeneous).pvalue > 1e-4

    def test_expected_total_is_weighted_blend(self, rng):
        """E[total'] matches the per-group response means exactly."""
        from repro.core.protocol import Protocol

        n, z = 60, 1
        state = initial_mixed_state(n=n, z=z, size_a=30, ones_a=20, ones_b=9)
        p = state.total_ones / n
        a0, a1 = voter(1).response_probabilities(p)
        b0, b1 = minority(3).response_probabilities(p)
        expected = (
            z
            + state.ones_a * a1
            + (state.size_a - state.ones_a) * a0
            + state.ones_b * b1
            + (state.size_b - state.ones_b) * b0
        )
        samples = [
            step_mixed(voter(1), minority(3), state, rng).total_ones
            for _ in range(4000)
        ]
        standard_error = np.std(samples) / np.sqrt(len(samples))
        assert abs(np.mean(samples) - expected) < 5 * standard_error + 1e-9


class TestSimulate:
    def test_voter_voter_mixture_converges(self, rng):
        state = initial_mixed_state(n=100, z=1, size_a=50, ones_a=0, ones_b=0)
        converged, rounds, final = simulate_mixed(
            voter(1), voter(1), state, 100_000, rng
        )
        assert converged and final.is_correct_consensus

    def test_consensus_absorbing(self, rng):
        state = initial_mixed_state(n=30, z=1, size_a=15, ones_a=15, ones_b=14)
        converged, rounds, _ = simulate_mixed(voter(1), minority(3), state, 10, rng)
        assert converged and rounds == 0

    def test_prop3_violation_rejected(self, rng):
        from repro.core.protocol import Protocol

        bad = Protocol(ell=1, g0=[0.2, 1.0], g1=[0.0, 1.0])
        state = initial_mixed_state(n=10, z=1, size_a=5, ones_a=2, ones_b=2)
        with pytest.raises(ValueError, match="Proposition 3"):
            simulate_mixed(voter(1), bad, state, 10, rng)

    def test_minority_heavy_mixture_stalls(self, rng):
        """A mixture dominated by constant-ell Minority inherits its well."""
        n = 512
        state = initial_mixed_state(
            n=n, z=1, size_a=n // 8, ones_a=0, ones_b=0
        )  # 1/8 voters, 7/8 minority agents, all wrong
        converged, _, _ = simulate_mixed(voter(1), minority(3), state, 500, rng)
        assert not converged
