"""Tests for the partial-synchrony (k-activation) engine."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count
from repro.dynamics.kactivation import simulate_k_activation, step_count_k
from repro.dynamics.sequential import sequential_transition_probabilities
from repro.protocols import minority, voter


class TestStep:
    def test_full_activation_matches_parallel_engine(self, rng_factory):
        """k = n - 1 activates every non-source agent: the parallel round."""
        protocol = minority(3)
        n, z, x = 50, 1, 30
        rng_a, rng_b = rng_factory(0), rng_factory(1)
        parallel = [step_count(protocol, n, z, x, rng_a) for _ in range(3000)]
        k_full = [step_count_k(protocol, n, z, x, n - 1, rng_b) for _ in range(3000)]
        assert ks_2samp(parallel, k_full).pvalue > 1e-4

    def test_single_activation_matches_sequential_probabilities(self, rng):
        """k = 1 reproduces the sequential birth-death increments."""
        protocol = voter(1)
        n, z, x = 40, 1, 20
        p_up, p_down = sequential_transition_probabilities(protocol, n, z, x)
        moves = np.array(
            [step_count_k(protocol, n, z, x, 1, rng) - x for _ in range(20000)]
        )
        assert abs(np.mean(moves == 1) - p_up) < 0.02
        assert abs(np.mean(moves == -1) - p_down) < 0.02
        assert set(np.unique(moves)) <= {-1, 0, 1}

    def test_count_stays_in_range(self, rng):
        protocol = minority(3)
        n, z = 64, 0
        x = 30
        for _ in range(300):
            x = step_count_k(protocol, n, z, x, 7, rng)
            assert 0 <= x <= n - 1

    def test_k_validated(self, rng):
        with pytest.raises(ValueError, match="k must"):
            step_count_k(voter(1), 10, 1, 5, 0, rng)
        with pytest.raises(ValueError, match="k must"):
            step_count_k(voter(1), 10, 1, 5, 10, rng)

    def test_inactive_agents_keep_opinions(self, rng):
        """With k = 1 at most one opinion changes per step."""
        protocol = minority(3)
        n, z, x = 30, 1, 15
        for _ in range(200):
            new_x = step_count_k(protocol, n, z, x, 1, rng)
            assert abs(new_x - x) <= 1


class TestSimulate:
    def test_converged_start(self, rng):
        config = Configuration(n=40, z=1, x0=40)
        result = simulate_k_activation(voter(1), config, 5, 10.0, rng)
        assert result.converged and result.steps == 0

    def test_voter_converges_under_any_k(self, rng):
        config = Configuration(n=60, z=1, x0=30)
        for k in (1, 7, 59):
            result = simulate_k_activation(voter(1), config, k, 10_000.0, rng)
            assert result.converged, k

    def test_parallel_rounds_normalization(self, rng):
        config = Configuration(n=100, z=1, x0=50)
        result = simulate_k_activation(voter(1), config, 10, 500.0, rng)
        assert result.parallel_rounds == pytest.approx(result.steps * 10 / 100)

    def test_prop3_violator_rejected(self, rng):
        from repro.core.protocol import Protocol

        bad = Protocol(ell=1, g0=[0.2, 1.0], g1=[0.0, 1.0])
        with pytest.raises(ValueError, match="Proposition 3"):
            simulate_k_activation(bad, Configuration(n=10, z=1, x0=5), 2, 10.0, rng)

    def test_synchronicity_unlocks_minority_overshoot(self, rng_factory):
        """The [15] mechanism needs simultaneity: large-ell Minority from the
        all-wrong start converges fast at full activation but stalls at
        k << n (each small batch re-equilibrates before the flip can
        complete)."""
        from repro.core.theory import minority_sqrt_sample_size

        n = 1024
        protocol = minority(minority_sqrt_sample_size(n))
        config = Configuration(n=n, z=1, x0=1)
        full = simulate_k_activation(protocol, config, n - 1, 200.0, rng_factory(0))
        assert full.converged and full.parallel_rounds < 50
        tiny = simulate_k_activation(protocol, config, 8, 200.0, rng_factory(1))
        assert not tiny.converged
