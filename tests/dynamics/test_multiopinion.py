"""Tests for the multi-opinion extension (footnote 2)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import chisquare

from repro.dynamics.multiopinion import (
    initial_multiopinion,
    multi_minority_rule,
    multi_voter_rule,
    simulate_multiopinion,
    step_multiopinion,
)
from repro.markov.exact import transition_row
from repro.protocols import minority


class TestInitialization:
    def test_histogram_realized(self, rng):
        opinions = initial_multiopinion(10, 3, z=2, histogram=[4, 3, 2], rng=rng)
        assert opinions[0] == 2
        np.testing.assert_array_equal(np.bincount(opinions[1:], minlength=3), [4, 3, 2])

    def test_bad_histogram_rejected(self, rng):
        with pytest.raises(ValueError, match="sum"):
            initial_multiopinion(10, 3, z=0, histogram=[4, 4, 4], rng=rng)
        with pytest.raises(ValueError, match="shape"):
            initial_multiopinion(10, 3, z=0, histogram=[9], rng=rng)
        with pytest.raises(ValueError, match="z"):
            initial_multiopinion(10, 3, z=5, histogram=[5, 2, 2], rng=rng)


class TestRestriction:
    def test_rules_never_adopt_unseen_opinions(self, rng):
        # step_multiopinion asserts the footnote-2 restriction internally;
        # run both rules for several rounds on a 3-opinion population.
        for rule in (multi_voter_rule, multi_minority_rule):
            opinions = initial_multiopinion(60, 3, z=0, histogram=[20, 20, 19], rng=rng)
            for _ in range(10):
                opinions = step_multiopinion(rule, 3, 4, 0, opinions, rng)

    def test_violating_rule_caught(self, rng):
        def cheating_rule(own, histograms, rng_inner):
            return np.full(len(own), 2)  # always adopt opinion 2, seen or not

        opinions = initial_multiopinion(20, 3, z=0, histogram=[19, 0, 0], rng=rng)
        with pytest.raises(AssertionError, match="unseen"):
            step_multiopinion(cheating_rule, 3, 2, 0, opinions, rng)


class TestBinaryReduction:
    def test_binary_initialization_stays_binary(self, rng):
        """Footnote 2: from a binary configuration no third opinion appears."""
        opinions = initial_multiopinion(50, 3, z=1, histogram=[25, 24, 0], rng=rng)
        history = simulate_multiopinion(
            multi_minority_rule, 3, 3, 1, opinions, max_rounds=30, rng=rng
        )
        assert np.all(history[:, 2] == 0)

    def test_q2_minority_matches_binary_chain(self, rng):
        """The q=2 multi-opinion minority has the binary Protocol-2 law."""
        n, z, x = 40, 1, 25
        trials = 4000
        samples = np.empty(trials, dtype=np.int64)
        for i in range(trials):
            opinions = initial_multiopinion(
                n, 2, z=z, histogram=[n - x, x - z], rng=rng
            )
            stepped = step_multiopinion(multi_minority_rule, 2, 3, z, opinions, rng)
            samples[i] = np.count_nonzero(stepped == 1)
        row = transition_row(minority(3), n, z, x)
        observed = np.bincount(samples, minlength=n + 1).astype(float)
        expected = row * trials
        keep = expected >= 5
        pooled_observed = np.append(observed[keep], observed[~keep].sum())
        pooled_expected = np.append(expected[keep], expected[~keep].sum())
        if pooled_expected[-1] == 0:
            pooled_observed, pooled_expected = pooled_observed[:-1], pooled_expected[:-1]
        assert chisquare(pooled_observed, pooled_expected).pvalue > 1e-4


class TestVoterRule:
    def test_voter_rule_marginal_is_sample_frequency(self, rng):
        """Adopting a uniform sample element weights opinions by count."""
        n, q = 2000, 4
        opinions = initial_multiopinion(
            n, q, z=0, histogram=[799, 600, 400, 200], rng=rng
        )
        stepped = step_multiopinion(multi_voter_rule, q, 1, 0, opinions, rng)
        frequencies = np.bincount(stepped, minlength=q) / n
        initial = np.bincount(opinions, minlength=q) / n
        np.testing.assert_allclose(frequencies, initial, atol=0.05)

    def test_consensus_reached_and_detected(self, rng):
        opinions = initial_multiopinion(30, 3, z=1, histogram=[5, 24, 0], rng=rng)
        history = simulate_multiopinion(
            multi_voter_rule, 3, 1, 1, opinions, max_rounds=20_000, rng=rng
        )
        assert history[-1][1] == 30
