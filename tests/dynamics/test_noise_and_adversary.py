"""Tests for observation noise and adversarial-start search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.adversary import exact_worst_start, simulated_worst_start
from repro.dynamics.config import Configuration
from repro.dynamics.noise import (
    distorted_fraction,
    noisy_occupancy,
    noisy_response_probabilities,
    step_count_noisy,
)
from repro.markov.exact import exact_expected_convergence_time
from repro.protocols import minority, voter


class TestDistortion:
    def test_closed_form(self):
        assert distorted_fraction(0.0, 0.1) == pytest.approx(0.1)
        assert distorted_fraction(1.0, 0.1) == pytest.approx(0.9)
        assert distorted_fraction(0.5, 0.3) == pytest.approx(0.5)

    def test_zero_noise_is_identity(self):
        grid = np.linspace(0, 1, 11)
        np.testing.assert_allclose(distorted_fraction(grid, 0.0), grid)

    def test_noise_level_validated(self):
        with pytest.raises(ValueError):
            distorted_fraction(0.5, 0.7)

    def test_noisy_responses_consistent(self):
        protocol = minority(3)
        p, delta = 0.8, 0.2
        expected = protocol.response_probabilities(distorted_fraction(p, delta))
        assert noisy_response_probabilities(protocol, p, delta) == expected


class TestNoisyStep:
    def test_zero_noise_matches_clean_distribution(self, rng_factory):
        from scipy.stats import ks_2samp

        from repro.dynamics.engine import step_count

        protocol = minority(3)
        n, z, x = 60, 1, 40
        clean_rng = rng_factory(0)
        noisy_rng = rng_factory(1)
        clean = [step_count(protocol, n, z, x, clean_rng) for _ in range(2000)]
        noisy = [
            step_count_noisy(protocol, n, z, x, 0.0, noisy_rng)
            for _ in range(2000)
        ]
        assert ks_2samp(clean, noisy).pvalue > 1e-4

    def test_consensus_not_absorbing_under_noise(self, rng):
        """The headline structural change: noise breaks Proposition 3."""
        protocol = minority(3)
        n = 200
        left = 0
        for _ in range(50):
            if step_count_noisy(protocol, n, 1, n, 0.2, rng) != n:
                left += 1
        assert left > 0

    def test_bounds_respected(self, rng):
        protocol = voter(1)
        x = 50
        for _ in range(100):
            x = step_count_noisy(protocol, 100, 1, x, 0.3, rng)
            assert 1 <= x <= 100


class TestOccupancy:
    def test_voter_collapses_to_center_under_any_noise(self, rng):
        """A genuine robustness finding: observation noise adds a restoring
        drift delta*(1 - 2p) toward 1/2, which swamps the Voter's O(1/n)
        source pull — even 1% noise parks the Voter at a coin flip."""
        config = Configuration(n=500, z=1, x0=1)
        result = noisy_occupancy(
            voter(1), config, delta=0.01, rounds=8000, rng=rng, burn_in=4000
        )
        assert 0.4 < result.mean_correct_fraction < 0.75
        assert result.occupancy < 0.1

    def test_majority_holds_consensus_under_low_noise(self, rng):
        """Majority's restoring drift beats small noise: the epsilon-consensus
        persists (though Majority cannot *reach* it from the wrong side)."""
        from repro.protocols import majority

        config = Configuration(n=500, z=1, x0=500)
        result = noisy_occupancy(
            majority(5), config, delta=0.05, rounds=4000, rng=rng, burn_in=500
        )
        assert result.occupancy > 0.9

    def test_occupancy_degrades_with_noise(self, rng_factory):
        from repro.protocols import majority

        config = Configuration(n=500, z=1, x0=500)
        low = noisy_occupancy(
            majority(5), config, delta=0.05, rounds=4000, rng=rng_factory(0), burn_in=500
        )
        high = noisy_occupancy(
            majority(5), config, delta=0.45, rounds=4000, rng=rng_factory(1), burn_in=500
        )
        assert low.mean_correct_fraction > high.mean_correct_fraction

    def test_validation(self, rng):
        config = Configuration(n=100, z=1, x0=50)
        with pytest.raises(ValueError, match="rounds"):
            noisy_occupancy(voter(1), config, 0.1, rounds=10, rng=rng, burn_in=10)


class TestWorstStart:
    def test_exact_matches_profile_maximum(self):
        worst = exact_worst_start(voter(1), 40, 1)
        assert worst.expected_rounds == pytest.approx(worst.profile.max())
        # For the Voter the farther from consensus, the slower: worst is x=1.
        assert worst.config.x0 == 1

    def test_exact_agrees_with_direct_solve(self):
        worst = exact_worst_start(voter(1), 30, 1)
        direct = exact_expected_convergence_time(
            voter(1), Configuration(n=30, z=1, x0=worst.config.x0)
        )
        assert worst.expected_rounds == pytest.approx(direct)

    def test_minority_metastable_well_dominates(self):
        """For Minority (Case 1), *every* start below the escape interval
        funnels into the metastable well at n/2, so the expected time is
        astronomically large and essentially flat across those starts."""
        n = 40
        worst = exact_worst_start(minority(3), n, 1)
        assert worst.expected_rounds > 1e6  # exp(Omega(n)) well at n = 40
        below_interval = worst.profile[worst.probed_counts <= n // 2]
        assert below_interval.max() / below_interval.min() < 1.01

    def test_simulated_search_reports_censoring_as_inf(self, rng):
        worst = simulated_worst_start(
            minority(3), 300, 1, max_rounds=50, rng=rng, replicas=3, grid_points=7
        )
        assert np.isinf(worst.expected_rounds)

    def test_simulated_search_voter(self, rng):
        worst = simulated_worst_start(
            voter(1), 100, 1, max_rounds=100_000, rng=rng, replicas=5, grid_points=5
        )
        assert np.isfinite(worst.expected_rounds)
        assert worst.config.x0 in worst.probed_counts
