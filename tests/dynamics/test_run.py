"""Tests for trajectory runners and convergence detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration, consensus_configuration
from repro.dynamics.run import (
    escape_time,
    simulate,
    simulate_ensemble,
    time_to_leave_consensus,
)
from repro.protocols import majority, minority, voter


class TestSimulate:
    def test_converged_start_returns_zero(self, rng):
        config = consensus_configuration(50, 1)
        result = simulate(voter(1), config, 100, rng)
        assert result.converged and result.rounds == 0

    def test_voter_converges_from_wrong_consensus(self, rng):
        config = Configuration(n=200, z=1, x0=1)
        result = simulate(voter(1), config, 50_000, rng)
        assert result.converged
        assert result.final_count == 200

    def test_censoring_reported(self, rng):
        # Minority with constant ell from the witness side barely moves.
        config = Configuration(n=500, z=1, x0=400)
        result = simulate(minority(3), config, 50, rng)
        assert not result.converged
        assert result.rounds is None

    def test_trajectory_recording(self, rng):
        config = Configuration(n=100, z=1, x0=50)
        result = simulate(voter(1), config, 30_000, rng, record=True)
        assert result.trajectory is not None
        assert result.trajectory[0] == 50
        if result.converged:
            assert result.trajectory[-1] == 100
            assert len(result.trajectory) == result.rounds + 1

    def test_prop3_violator_rejected(self, rng):
        bad = Protocol(ell=1, g0=[0.2, 1.0], g1=[0.0, 1.0])
        with pytest.raises(ValueError, match="Proposition 3"):
            simulate(bad, Configuration(n=10, z=1, x0=5), 10, rng)


class TestEnsemble:
    def test_all_replicas_converge_for_voter(self, rng):
        config = Configuration(n=100, z=1, x0=1)
        times = simulate_ensemble(voter(1), config, 50_000, rng, replicas=30)
        assert not np.isnan(times).any()
        assert np.all(times > 0)

    def test_converged_start_gives_zero_times(self, rng):
        config = consensus_configuration(60, 0)
        times = simulate_ensemble(voter(1), config, 10, rng, replicas=5)
        np.testing.assert_array_equal(times, 0.0)

    def test_censored_replicas_are_nan(self, rng):
        config = Configuration(n=400, z=1, x0=300)
        times = simulate_ensemble(minority(3), config, 20, rng, replicas=10)
        assert np.isnan(times).all()  # the Theorem-1 regime: way too slow

    def test_replica_count_validated(self, rng):
        with pytest.raises(ValueError, match="replicas"):
            simulate_ensemble(voter(1), Configuration(n=10, z=1, x0=5), 10, rng, 0)

    def test_ensemble_times_match_single_run_distribution(self, rng_factory):
        """The lock-step ensemble must be distributionally identical to loops."""
        config = Configuration(n=80, z=1, x0=40)
        ensemble = simulate_ensemble(
            voter(1), config, 100_000, rng_factory(0), replicas=200
        )
        singles = np.array(
            [
                simulate(voter(1), config, 100_000, rng_factory(1 + i)).rounds
                for i in range(200)
            ],
            dtype=float,
        )
        from scipy.stats import ks_2samp

        assert ks_2samp(ensemble, singles).pvalue > 1e-4


class TestEscapeTime:
    def test_already_escaped_returns_zero(self, rng):
        from repro.core.lower_bound import lower_bound_certificate

        certificate = lower_bound_certificate(minority(3))
        n = 1000
        # Manufacture a run whose start is past the threshold by starting the
        # check from the threshold itself.
        threshold = certificate.escape_threshold(n)
        assert certificate.has_escaped(n, threshold)

    def test_none_means_budget_exhausted(self, rng):
        from repro.core.lower_bound import lower_bound_certificate

        certificate = lower_bound_certificate(minority(3))
        result = escape_time(minority(3), certificate, 2000, 30, rng)
        assert result is None  # escape takes >= n^(1-eps) >> 30 rounds


class TestLeaveConsensus:
    def test_violator_leaves_quickly(self, rng):
        bad = Protocol(ell=1, g0=[0.3, 1.0], g1=[0.0, 1.0], name="leaky")
        t = time_to_leave_consensus(bad, n=100, z=0, max_rounds=100, rng=rng)
        assert t == 1  # with 99 agents each leaving w.p. 0.3, round 1 breaks it

    def test_compliant_protocol_short_circuits(self, rng):
        assert time_to_leave_consensus(voter(1), 100, 1, 100, rng) is None

    def test_upper_violation_side(self, rng):
        bad = Protocol(ell=1, g0=[0.0, 1.0], g1=[0.0, 0.7], name="leaky-top")
        t = time_to_leave_consensus(bad, n=100, z=1, max_rounds=100, rng=rng)
        assert t is not None and t <= 3
