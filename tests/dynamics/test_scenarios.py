"""Tests for the hostile-world scenario engine (docs/SCENARIOS.md)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.config import Configuration, ScenarioConfig
from repro.dynamics.rng import make_rng
from repro.dynamics.run import recovery_summary, simulate_ensemble
from repro.dynamics.scenarios import (
    ChurnScenario,
    ComposedScenario,
    CorruptScenario,
    DriftScenario,
    FlipSourceScenario,
    LyingSourceScenario,
    Scenario,
    ZealotsScenario,
    as_scenario,
    available_scenarios,
    get_scenario_family,
    hypergeometric_icdf,
    make_scenario,
    scenario_step_generator,
    scenario_target,
)
from repro.protocols import minority, voter


class TestRegistry:
    def test_builtins_registered(self):
        names = available_scenarios()
        for name in ("null", "churn", "lossy", "corrupt", "lying-source",
                     "flip-source", "drift", "zealots"):
            assert name in names

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            make_scenario("bogus", 64)

    def test_unknown_param(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_scenario("lossy:frequency=0.1", 64)

    def test_bad_param_value(self):
        with pytest.raises(ValueError):
            make_scenario("churn:period=often", 64)

    def test_family_has_schema(self):
        family = get_scenario_family("churn")
        assert family.summary
        assert {p.name for p in family.params} == {"period", "amplitude", "bias"}


class TestParsingAndSpec:
    def test_single_part_passthrough(self):
        scenario = make_scenario("lossy:rate=0.25", 64)
        assert not isinstance(scenario, ComposedScenario)
        assert scenario.spec() == "lossy:rate=0.25"

    def test_spec_is_canonical(self):
        """Params are sorted and defaults materialized: spec strings that
        build the same world compare equal as strings."""
        a = make_scenario("churn:amplitude=4,period=8", 64)
        b = make_scenario("churn:period=8,amplitude=4", 64)
        assert a.spec() == b.spec() == "churn:amplitude=4,bias=0.5,period=8"

    def test_composition_spec_preserves_part_order(self):
        spec = "lossy:rate=0.1+flip-source:at=12"
        assert make_scenario(spec, 64).spec() == spec

    def test_spec_round_trips(self):
        spec = make_scenario("churn+lossy+flip-source", 64).spec()
        assert make_scenario(spec, 64).spec() == spec

    def test_two_source_parts_refused(self):
        with pytest.raises(ValueError, match="source"):
            make_scenario("lying-source+flip-source", 64)

    def test_two_population_parts_refused(self):
        with pytest.raises(ValueError, match="population"):
            make_scenario("churn+churn:period=4", 64)

    def test_as_scenario_normalizes(self):
        assert as_scenario(None, 64) is None
        built = make_scenario("null", 64)
        assert as_scenario(built, 64) is built
        assert as_scenario("lossy", 64).spec() == "lossy:rate=0.1"
        assert as_scenario(ScenarioConfig("lossy"), 64).spec() == "lossy:rate=0.1"


class TestScenarioSemantics:
    def test_null_is_identity(self):
        scenario = Scenario(64)
        assert scenario.population(100) == 64
        assert scenario.pinned(3, 1) == (1, 0)
        assert scenario.pinned(3, 0) == (0, 1)
        assert scenario.true_opinion(3, 1) == 1
        assert scenario.settle_round(1000) == 0
        assert scenario.events(1000) == []

    def test_churn_square_wave(self):
        churn = ChurnScenario(64, period=4, amplitude=6)
        assert churn.population(0) == 64
        assert churn.population(1) == 64
        assert churn.population(2) == 70
        assert churn.population(3) == 70
        assert churn.population(4) == 64
        assert churn.population(-5) == 64

    def test_flip_source_swaps_pins_and_gates(self):
        flip = FlipSourceScenario(64, at=10)
        assert flip.pinned(9, 1) == (1, 0)
        assert flip.pinned(10, 1) == (0, 1)
        assert flip.true_opinion(9, 1) == 1
        assert flip.true_opinion(10, 1) == 0
        assert flip.settle_round(1000) == 10
        assert flip.settle_round(5) == 0  # flip beyond the budget: no gate
        assert ("source_flip") in [kind for _, kind in flip.events(1000)]

    def test_lying_source_windows(self):
        liar = LyingSourceScenario(64, start=5, duration=3, period=10)
        for t in (5, 6, 7, 15, 16, 17):
            assert liar.pinned(t, 1) == (0, 1)
        for t in (4, 8, 14, 18):
            assert liar.pinned(t, 1) == (1, 0)
        # settle: one round past the last lie inside the budget
        assert liar.settle_round(20) == 18
        # periodic: settle chases the last lie window inside the budget
        assert liar.settle_round(1000) == 998
        assert LyingSourceScenario(64, start=5, duration=3).settle_round(50) == 8
        assert LyingSourceScenario(64, start=60, duration=3).settle_round(50) == 0

    def test_drift_switches_protocols(self):
        drift = DriftScenario(64, alt="voter", switch=10)
        protocol = minority(3)
        p = 0.3
        p0, p1 = protocol.response_probabilities(p)
        assert drift.transform_responses(protocol, 9, p, p0, p1) == (p0, p1)
        assert drift.transform_responses(protocol, 10, p, p0, p1) == pytest.approx(
            voter(1).response_probabilities(p)
        )

    def test_scenario_target(self):
        zealots = ZealotsScenario(64, s1=3, s0=2)
        assert scenario_target(zealots, 0, 1) == 3 + (64 - 5) * 1
        flip = FlipSourceScenario(64, at=10)
        assert scenario_target(flip, 9, 1) == 64
        assert scenario_target(flip, 10, 1) == 0

    def test_pinned_total_must_be_constant(self):
        class Growing(Scenario):
            def pinned(self, t, z):
                return (1 + max(t, 0), 0)

        with pytest.raises(ValueError, match="pinned"):
            simulate_ensemble(
                voter(1), Configuration(n=16, z=1, x0=8), 50, make_rng(0), 2,
                scenario=Growing(16),
            )

    def test_zealots_must_leave_a_free_agent(self):
        with pytest.raises(ValueError, match="free agent"):
            ZealotsScenario(4, s1=2, s0=2)


class TestHypergeometricIcdf:
    def test_matches_scipy_cdf_inversion(self):
        from scipy.stats import hypergeom

        rng = np.random.default_rng(5)
        for _ in range(100):
            ngood = int(rng.integers(0, 40))
            nbad = int(rng.integers(0, 40))
            draws = int(rng.integers(0, ngood + nbad + 1))
            u = rng.random(17)
            got = hypergeometric_icdf(
                u,
                np.full(17, ngood, dtype=np.int64),
                np.full(17, nbad, dtype=np.int64),
                np.full(17, draws, dtype=np.int64),
            )
            # invert scipy's CDF by hand: min{k : CDF(k) >= u} (scipy's own
            # ppf NaNs out on degenerate supports)
            support = np.arange(max(0, draws - nbad), min(ngood, draws) + 1)
            cdf = hypergeom.cdf(support, ngood + nbad, ngood, draws)
            want = support[np.searchsorted(cdf, u, side="left")]
            np.testing.assert_array_equal(got, want)

    def test_scalar_inputs(self):
        value = hypergeometric_icdf(np.float64(0.5), 5, 5, 4)
        assert np.shape(value) == ()
        assert 0 <= int(value) <= 4

    def test_support_edges(self):
        # draws > nbad forces a minimum number of good draws
        got = hypergeometric_icdf(np.zeros(3), np.full(3, 6), np.full(3, 2),
                                  np.full(3, 5))
        np.testing.assert_array_equal(got, np.full(3, 3))


class TestNullScenarioBitIdentity:
    N, BUDGET, REPLICAS, SEED = 96, 5000, 8, 7

    def _config(self):
        return Configuration(n=self.N, z=1, x0=1)

    def _times(self, engine, scenario):
        return simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, engine=engine, scenario=scenario,
        )

    @pytest.mark.parametrize("engine", ["loop", "batched"])
    def test_null_equals_no_scenario(self, engine):
        np.testing.assert_array_equal(
            self._times(engine, None), self._times(engine, "null")
        )

    def test_scenario_config_accepted(self):
        np.testing.assert_array_equal(
            self._times("batched", None),
            self._times("batched", ScenarioConfig("null")),
        )

    def test_null_through_interrupt_and_resume(self, tmp_path):
        from repro.execution import Checkpointer, GracefulExit

        from tests.execution.test_checkpoint import _StopAfterPolls

        baseline = self._times("batched", None)
        path = tmp_path / "null.ckpt"
        with pytest.raises(GracefulExit):
            simulate_ensemble(
                voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
                self.REPLICAS, scenario="null",
                checkpoint=Checkpointer(path, every=5, guard=_StopAfterPolls(23)),
            )
        resumed = simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, scenario="null",
            checkpoint=Checkpointer.resume(path, every=5),
        )
        np.testing.assert_array_equal(resumed, baseline)

    def test_lockstep_refuses_scenarios(self):
        with pytest.raises(ValueError, match="lockstep"):
            self._times("lockstep", "null")


COMPOSITE = "churn:period=8,amplitude=4+lossy:rate=0.1+flip-source:at=12"


class TestComposedBitIdentity:
    N, BUDGET, REPLICAS, SEED = 48, 4000, 8, 11

    def _config(self):
        return Configuration(n=self.N, z=1, x0=24)

    def _times(self, engine, **kwargs):
        return simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, engine=engine, scenario=COMPOSITE, **kwargs,
        )

    def test_loop_equals_batched(self):
        loop = self._times("loop")
        batched = self._times("batched")
        np.testing.assert_array_equal(loop, batched)
        assert np.isfinite(loop).all()
        # convergence is gated on the settle round (the source flip at 12)
        assert (loop >= 12).all()

    def test_supervised_worker_invariance(self):
        def run(workers):
            return simulate_ensemble(
                voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
                self.REPLICAS, workers=workers, shards=3, scenario=COMPOSITE,
            )

        np.testing.assert_array_equal(run(1), run(2))

    def test_interrupt_resume_bit_identical(self, tmp_path):
        from repro.execution import Checkpointer, GracefulExit

        from tests.execution.test_checkpoint import _StopAfterPolls

        baseline = self._times("batched")
        path = tmp_path / "hostile.ckpt"
        with pytest.raises(GracefulExit):
            self._times(
                "batched",
                checkpoint=Checkpointer(path, every=5, guard=_StopAfterPolls(19)),
            )
        resumed = self._times(
            "batched", checkpoint=Checkpointer.resume(path, every=5)
        )
        np.testing.assert_array_equal(resumed, baseline)

    def test_resume_refuses_mismatched_scenario(self, tmp_path):
        from repro.execution import Checkpointer, CheckpointError, GracefulExit

        from tests.execution.test_checkpoint import _StopAfterPolls

        path = tmp_path / "hostile.ckpt"
        with pytest.raises(GracefulExit):
            self._times(
                "batched",
                checkpoint=Checkpointer(path, every=5, guard=_StopAfterPolls(19)),
            )
        with pytest.raises(CheckpointError, match="different run"):
            simulate_ensemble(
                voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
                self.REPLICAS, scenario="lossy:rate=0.2",
                checkpoint=Checkpointer.resume(path, every=5),
            )

    def test_clean_checkpoint_refused_under_scenario(self, tmp_path):
        from repro.execution import Checkpointer, CheckpointError, GracefulExit

        from tests.execution.test_checkpoint import _StopAfterPolls

        path = tmp_path / "clean.ckpt"
        with pytest.raises(GracefulExit):
            simulate_ensemble(
                voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
                self.REPLICAS,
                checkpoint=Checkpointer(path, every=5, guard=_StopAfterPolls(19)),
            )
        with pytest.raises(CheckpointError, match="different run"):
            self._times(
                "batched", checkpoint=Checkpointer.resume(path, every=5)
            )


class TestTraceTagging:
    def test_round_records_carry_scenario_events(self, tmp_path):
        from repro.telemetry import open_trace_writer, validate_trace

        path = tmp_path / "hostile.jsonl"
        trace = open_trace_writer(str(path), "jsonl")
        simulate_ensemble(
            voter(1), Configuration(n=48, z=1, x0=24), 4000, make_rng(11), 6,
            recorder=trace, scenario=COMPOSITE,
        )
        trace.close()
        records = validate_trace(path)
        start = records[0]
        assert start["params"]["scenario"] == (
            "churn:amplitude=4,bias=0.5,period=8+lossy:rate=0.1"
            "+flip-source:at=12"
        )
        assert start["params"]["settle_round"] == 12
        rounds = [r for r in records if r.get("kind") == "round"]
        flip_round = [r for r in rounds if r["t"] == 12]
        assert flip_round and "source_flip" in flip_round[0]["scenario_event"]
        assert any(r.get("population", 48) != 48 for r in rounds)
        end = next(r for r in records if r.get("kind") == "run_end")
        assert end["settle_round"] == 12
        assert end["recovered"] == 6
        assert end["recovery_p50"] >= 1


class TestRecoveryStatistics:
    def test_recovery_summary_exact(self):
        out = recovery_summary(np.array([np.nan, 5.0, 7.0, 9.0]), settle=4)
        # quantiles use method="lower": p90 of [1, 3, 5] sits at index
        # floor(2 * 0.9) = 1
        assert out == {
            "recovered": 3,
            "recovery_mean": 3.0,
            "recovery_p50": 3.0,
            "recovery_p90": 3.0,
        }
        wide = recovery_summary(np.arange(5.0, 15.0), settle=4)
        assert wide["recovered"] == 10
        assert wide["recovery_mean"] == 5.5
        assert wide["recovery_p50"] == 5.0
        assert wide["recovery_p90"] == 9.0

    def test_recovery_summary_none_recovered(self):
        assert recovery_summary(np.array([np.nan, np.nan]), settle=4) == {
            "recovered": 0
        }

    def test_summarize_recovery_shifts(self):
        from repro.analysis.ensemble import summarize_recovery, summarize_times

        times = np.array([6.0, 8.0, np.nan, 15.0])
        stats = summarize_recovery(times, settle=5, budget=20)
        plain = summarize_times(times - 5.0, budget=15)
        assert stats == plain
        assert stats.budget == 15

    def test_summarize_recovery_rejects_pre_settle_times(self):
        from repro.analysis.ensemble import summarize_recovery

        with pytest.raises(ValueError, match="settle"):
            summarize_recovery(np.array([3.0, 9.0]), settle=5)

    def test_flip_once_recovery_matches_markov_oracle(self):
        """Exact small-n check against the absorption-time oracle.

        Start the voter at the correct consensus (z=1, x0=n).  A
        flip-source at round ``a`` deterministically lands the chain at
        ``x_a = n - 1`` (every free agent sampled a one), after which the
        dynamics is exactly the z=0 count chain.  The recovery time
        ``tau - a`` must therefore follow the absorption law of that chain
        from ``n - 1`` into 0.
        """
        from repro.markov.absorption_time import absorption_time_cdf
        from repro.markov.exact import count_chain

        n, at, replicas = 12, 5, 400
        times = simulate_ensemble(
            voter(1), Configuration(n=n, z=1, x0=n), 4000, make_rng(123),
            replicas, scenario=f"flip-source:at={at}",
        )
        assert np.isfinite(times).all()
        recovery = times - at
        assert (recovery >= 1).all()

        oracle = absorption_time_cdf(
            count_chain(voter(1), n, 0), [0], start=n - 1, horizon=4000
        )
        for q in (0.25, 0.5, 0.75, 0.9):
            t = oracle.quantile(q)
            empirical = float(np.mean(recovery <= t))
            # binomial CI at 400 replicas: sd <= 0.025, allow ~3.5 sigma
            assert abs(empirical - oracle.cdf[t]) < 0.09, (q, t, empirical)


class TestLegacyShimBitIdentity:
    """The refactored zealots/noise helpers consume the exact legacy stream."""

    def test_zealots_shim(self):
        from repro.dynamics.zealots import ZealotPopulation, step_count_zealots

        def legacy(protocol, pop, x, rng):
            p0, p1 = protocol.response_probabilities(x / pop.n)
            free_ones = x - pop.s1
            free_zeros = pop.n - x - pop.s0
            kept = int(rng.binomial(free_ones, p1)) if free_ones > 0 else 0
            flipped = int(rng.binomial(free_zeros, p0)) if free_zeros > 0 else 0
            return pop.s1 + kept + flipped

        pop = ZealotPopulation(n=50, s1=5, s0=5)
        rng_a, rng_b = make_rng(7), make_rng(7)
        x_a = x_b = 25
        for _ in range(300):
            x_a = step_count_zealots(voter(1), pop, x_a, rng_a)
            x_b = legacy(voter(1), pop, x_b, rng_b)
            assert x_a == x_b
        # boundary counts leave one bucket empty: the skipped draw must
        # leave the stream untouched, exactly like the legacy guards
        for x0 in (5, 45):
            rng_a, rng_b = make_rng(x0), make_rng(x0)
            assert step_count_zealots(voter(1), pop, x0, rng_a) == legacy(
                voter(1), pop, x0, rng_b
            )

    def test_zealots_all_pinned_degenerate(self):
        from repro.dynamics.zealots import ZealotPopulation, step_count_zealots

        pop = ZealotPopulation(n=10, s1=6, s0=4)
        assert step_count_zealots(voter(1), pop, 6, make_rng(0)) == 6

    def test_noise_shim(self):
        from repro.dynamics.noise import step_count_noisy

        def legacy(protocol, n, z, x, delta, rng):
            p = x / n
            distorted = p * (1.0 - delta) + (1.0 - p) * delta
            p0, p1 = protocol.response_probabilities(distorted)
            m1, m0 = x - z, n - x - (1 - z)
            kept = int(rng.binomial(m1, p1)) if m1 > 0 else 0
            flipped = int(rng.binomial(m0, p0)) if m0 > 0 else 0
            return z + kept + flipped

        rng_a, rng_b = make_rng(9), make_rng(9)
        x_a = x_b = 40
        for _ in range(300):
            x_a = step_count_noisy(minority(3), 60, 1, x_a, 0.2, rng_a)
            x_b = legacy(minority(3), 60, 1, x_b, 0.2, rng_b)
            assert x_a == x_b
        for x0 in (1, 60):
            rng_a, rng_b = make_rng(x0), make_rng(x0)
            assert step_count_noisy(minority(3), 60, 1, x0, 0.2, rng_a) == legacy(
                minority(3), 60, 1, x0, 0.2, rng_b
            )

    def test_noise_shim_validates_delta(self):
        from repro.dynamics.noise import step_count_noisy

        with pytest.raises(ValueError, match="delta"):
            step_count_noisy(voter(1), 60, 1, 30, 0.7, make_rng(0))

    def test_worst_start_accepts_scenario(self):
        from repro.dynamics.adversary import simulated_worst_start

        clean = simulated_worst_start(
            voter(1), 24, 1, 600, make_rng(3), replicas=4, grid_points=5
        )
        hostile = simulated_worst_start(
            voter(1), 24, 1, 600, make_rng(3), replicas=4, grid_points=5,
            scenario="lossy:rate=0.3",
        )
        np.testing.assert_array_equal(clean.probed_counts, hostile.probed_counts)
        # 30% message loss slows the search down in aggregate (per-start
        # comparisons are too noisy at 4 replicas; the seed is fixed, so
        # this comparison is deterministic)
        assert hostile.profile.sum() > clean.profile.sum()

    def test_worst_start_clean_stream_unchanged(self):
        from repro.dynamics.adversary import simulated_worst_start

        a = simulated_worst_start(
            voter(1), 24, 1, 600, make_rng(3), replicas=4, grid_points=5
        )
        b = simulated_worst_start(
            voter(1), 24, 1, 600, make_rng(3), replicas=4, grid_points=5,
            scenario=None,
        )
        np.testing.assert_array_equal(a.profile, b.profile)


class TestGeneratorPath:
    def test_generator_matches_keyed_distributionally(self):
        """The shared-Generator scenario step and the keyed kernel sample
        the same conditional law (KS over one-step distributions)."""
        from scipy.stats import ks_2samp

        from repro.dynamics.batched import replica_keys
        from repro.dynamics.scenarios import scenario_step_counts

        scenario = make_scenario("lossy:rate=0.2", 40)
        rng = make_rng(0)
        x = 25
        gen = [
            scenario_step_generator(voter(1), scenario, x, 1, 1, rng)
            for _ in range(2000)
        ]
        keys = replica_keys(1234, 2000)
        keyed = scenario_step_counts(
            voter(1), scenario, 1, np.full(2000, x, dtype=np.int64), keys, 1
        )
        assert ks_2samp(gen, keyed).pvalue > 1e-4

    def test_generator_churn_bounds(self):
        scenario = make_scenario("churn:period=4,amplitude=6", 40)
        rng = make_rng(1)
        x, t = 20, 0
        for t in range(1, 60):
            x = scenario_step_generator(voter(1), scenario, x, t, 1, rng)
            pin1, pin0 = scenario.pinned(t, 1)
            assert pin1 <= x <= scenario.population(t) - pin0
