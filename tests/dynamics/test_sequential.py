"""Tests for the sequential setting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration
from repro.dynamics.sequential import (
    sequential_transition_probabilities,
    simulate_sequential,
)
from repro.markov.birth_death import sequential_birth_death_chain
from repro.protocols import minority, voter


class TestTransitionProbabilities:
    def test_probabilities_are_valid(self):
        for protocol in (voter(1), minority(3)):
            for x in range(1, 51):
                p_up, p_down = sequential_transition_probabilities(protocol, 50, 1, x)
                assert 0.0 <= p_up <= 1.0
                assert 0.0 <= p_down <= 1.0
                assert p_up + p_down <= 1.0 + 1e-12

    def test_consensus_is_absorbing(self):
        p_up, p_down = sequential_transition_probabilities(voter(1), 50, 1, 50)
        assert p_up == 0.0 and p_down == 0.0
        p_up, p_down = sequential_transition_probabilities(voter(1), 50, 0, 0)
        assert p_up == 0.0 and p_down == 0.0

    def test_wrong_consensus_not_absorbing(self):
        # z = 1, x = 1: only the source holds 1; a zero-agent can sample it.
        p_up, p_down = sequential_transition_probabilities(voter(1), 50, 1, 1)
        assert p_up == pytest.approx((49 / 49) * (1 / 50))
        assert p_down == 0.0

    def test_voter_closed_form(self):
        # Voter: P0(p) = p and 1 - P1(p) = 1 - p.
        n, z, x = 100, 0, 40
        p = x / n
        p_up, p_down = sequential_transition_probabilities(voter(1), n, z, x)
        assert p_up == pytest.approx(((n - x - 1) / (n - 1)) * p)
        assert p_down == pytest.approx((x / (n - 1)) * (1 - p))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="count x"):
            sequential_transition_probabilities(voter(1), 50, 1, 0)


class TestSimulateSequential:
    def test_voter_converges(self, rng):
        config = Configuration(n=60, z=1, x0=1)
        result = simulate_sequential(voter(1), config, 10_000_000, rng)
        assert result.converged
        assert result.parallel_rounds > 0

    def test_converged_start(self, rng):
        config = Configuration(n=40, z=0, x0=0)
        result = simulate_sequential(voter(1), config, 1000, rng)
        assert result.converged and result.activations == 0

    def test_budget_exhaustion(self, rng):
        config = Configuration(n=100, z=1, x0=50)
        result = simulate_sequential(voter(1), config, 50, rng)
        if not result.converged:
            assert result.activations == 50

    def test_prop3_violator_rejected(self, rng):
        bad = Protocol(ell=1, g0=[0.2, 1.0], g1=[0.0, 1.0])
        with pytest.raises(ValueError, match="Proposition 3"):
            simulate_sequential(bad, Configuration(n=10, z=1, x0=5), 10, rng)

    def test_frozen_state_detected(self, rng):
        # A protocol that never changes anyone: g = identity on own opinion.
        frozen = Protocol(ell=1, g0=[0.0, 0.0], g1=[1.0, 1.0], name="inert")
        config = Configuration(n=20, z=1, x0=10)
        result = simulate_sequential(frozen, config, 1000, rng)
        assert result.frozen and not result.converged

    def test_matches_birth_death_expectation(self, rng_factory):
        """Holding-time-accelerated simulation matches the exact E[T]."""
        n, z = 40, 1
        config = Configuration(n=n, z=z, x0=20)
        chain = sequential_birth_death_chain(voter(1), n, z)
        exact = chain.expected_time_to_top(20)
        samples = [
            simulate_sequential(voter(1), config, 10_000_000, rng_factory(i)).activations
            for i in range(150)
        ]
        mean = np.mean(samples)
        standard_error = np.std(samples) / np.sqrt(len(samples))
        assert abs(mean - exact) < 5 * standard_error + 1.0
