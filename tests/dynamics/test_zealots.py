"""Tests for the competing-zealots setting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.zealots import (
    ZealotPopulation,
    stationary_profile,
    step_count_zealots,
)
from repro.protocols import majority, voter


class TestPopulation:
    def test_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            ZealotPopulation(n=10, s1=6, s0=6)
        with pytest.raises(ValueError, match="non-negative"):
            ZealotPopulation(n=10, s1=-1, s0=0)
        with pytest.raises(ValueError, match="n"):
            ZealotPopulation(n=1, s1=0, s0=0)

    def test_bounds(self):
        population = ZealotPopulation(n=20, s1=3, s0=2)
        assert population.count_bounds() == (3, 18)
        assert population.free_agents == 15


class TestStep:
    def test_zealots_never_move(self, rng):
        population = ZealotPopulation(n=50, s1=5, s0=5)
        x = 25
        for _ in range(200):
            x = step_count_zealots(voter(1), population, x, rng)
            assert 5 <= x <= 45

    def test_one_sided_zealots_reduce_to_source_model(self, rng_factory):
        """s1=1, s0=0 is exactly the bit-dissemination chain with z=1."""
        from scipy.stats import ks_2samp

        from repro.dynamics.engine import step_count

        n, x = 40, 25
        population = ZealotPopulation(n=n, s1=1, s0=0)
        rng_a, rng_b = rng_factory(0), rng_factory(1)
        with_zealot = [
            step_count_zealots(voter(1), population, x, rng_a) for _ in range(3000)
        ]
        with_source = [step_count(voter(1), n, 1, x, rng_b) for _ in range(3000)]
        assert ks_2samp(with_zealot, with_source).pvalue > 1e-4

    def test_out_of_range_rejected(self, rng):
        population = ZealotPopulation(n=20, s1=3, s0=2)
        with pytest.raises(ValueError, match="count x"):
            step_count_zealots(voter(1), population, 2, rng)


class TestStationaryBehaviour:
    def test_voter_mean_matches_zealot_share(self, rng):
        """[25]-style: E[fraction of 1s] -> s1 / (s1 + s0) under the Voter.

        (The Voter's free agents are a martingale pulled by both camps in
        proportion to their sizes.)
        """
        population = ZealotPopulation(n=300, s1=9, s0=3)
        trace = stationary_profile(
            voter(1), population, rounds=30_000, rng=rng, burn_in=5_000
        )
        mean_fraction = float(trace.mean() / population.n)
        assert mean_fraction == pytest.approx(9 / 12, abs=0.06)

    def test_symmetric_zealots_give_half(self, rng):
        population = ZealotPopulation(n=200, s1=5, s0=5)
        trace = stationary_profile(
            voter(1), population, rounds=20_000, rng=rng, burn_in=4_000
        )
        assert float(trace.mean() / 200) == pytest.approx(0.5, abs=0.07)

    def test_no_consensus_is_absorbing_with_opposition(self, rng):
        """Even the consensus-loving Majority cannot settle: the opposing
        zealots re-seed the other side every round."""
        population = ZealotPopulation(n=100, s1=10, s0=10)
        trace = stationary_profile(
            majority(3), population, rounds=4_000, rng=rng, burn_in=500
        )
        low, high = population.count_bounds()
        # The chain keeps moving (not parked at either extreme forever).
        assert trace.min() >= low and trace.max() <= high
        assert len(np.unique(trace)) > 1

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="rounds"):
            stationary_profile(voter(1), ZealotPopulation(10, 1, 1), 5, rng, burn_in=5)
