"""Deterministic seeded-jitter backoff (shared by supervisor + service)."""

from __future__ import annotations

import pytest

from repro.execution.backoff import backoff_delay_s, seeded_jitter


class TestSeededJitter:
    def test_pure_function_of_key_and_attempt(self):
        assert seeded_jitter("k", 3) == seeded_jitter("k", 3)

    def test_distinct_keys_and_attempts_differ(self):
        assert seeded_jitter("a", 1) != seeded_jitter("b", 1)
        assert seeded_jitter("a", 1) != seeded_jitter("a", 2)

    def test_unit_interval(self):
        for attempt in range(1, 50):
            assert 0.0 <= seeded_jitter("key", attempt) < 1.0


class TestBackoffDelay:
    def test_reproducible(self):
        first = backoff_delay_s(2, base_s=0.1, cap_s=5.0, key="seed:shard0")
        again = backoff_delay_s(2, base_s=0.1, cap_s=5.0, key="seed:shard0")
        assert first == again

    def test_bounded_by_cap_and_never_degenerate(self):
        for attempt in range(1, 40):
            delay = backoff_delay_s(attempt, base_s=0.1, cap_s=5.0, key="k")
            raw = min(5.0, 0.1 * 2 ** (attempt - 1))
            assert raw / 2 <= delay < raw
            assert delay <= 5.0

    def test_exponential_envelope_grows_until_the_cap(self):
        envelopes = [
            min(5.0, 0.1 * 2 ** (attempt - 1)) for attempt in range(1, 10)
        ]
        assert envelopes == sorted(envelopes)
        assert envelopes[-1] == 5.0

    def test_distinct_shards_desynchronize(self):
        delays = {
            backoff_delay_s(1, base_s=0.1, cap_s=5.0, key=f"seed:shard{k}")
            for k in range(8)
        }
        assert len(delays) == 8

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            backoff_delay_s(0, base_s=0.1, cap_s=5.0, key="k")
