"""Tests for atomic checkpoint/resume and its bit-identical guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ensemble import convergence_ensemble
from repro.dynamics.config import Configuration, wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate, simulate_ensemble
from repro.execution import (
    CheckpointError,
    Checkpointer,
    CheckpointState,
    decode_times,
    encode_times,
    load_checkpoint,
    run_signature,
    save_checkpoint,
)
from repro.protocols import minority, voter


class TestCheckpointDocuments:
    def test_roundtrip(self, tmp_path):
        rng = make_rng(3)
        rng.integers(0, 10, size=100)  # advance the stream off its seed state
        state = CheckpointState(
            runner="simulate_ensemble",
            round=40,
            rng_state=rng.bit_generator.state,
            payload={
                "counts": np.array([3, 5], dtype=np.int64),
                "times": [None, 12.0],
            },
            signature="sha256:0123456789abcdef",
            meta={"command": "run", "seed": 3},
        )
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, state)
        loaded = load_checkpoint(path)
        assert loaded.runner == state.runner
        assert loaded.round == 40
        assert loaded.signature == state.signature
        assert loaded.complete is False
        assert loaded.meta == {"command": "run", "seed": 3}
        np.testing.assert_array_equal(
            loaded.payload["counts"], np.array([3, 5], dtype=np.int64)
        )
        assert loaded.payload["times"] == [None, 12.0]
        # Restoring the stored state replays the identical stream.
        fresh = make_rng(99)
        fresh.bit_generator.state = loaded.rng_state
        assert fresh.integers(0, 1 << 30) == rng.integers(0, 1 << 30)

    def test_save_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "run.ckpt"
        state = CheckpointState(
            runner="simulate", round=1, rng_state=make_rng(0).bit_generator.state,
            payload={"x": 1}, signature="sha256:aa",
        )
        save_checkpoint(path, state)
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.ckpt"
        path.write_text('{"schema": 999}')
        with pytest.raises(CheckpointError, match="unsupported checkpoint schema"):
            load_checkpoint(path)

    def test_times_encoding_roundtrip(self):
        times = np.array([1.0, np.nan, 250.0, np.nan])
        decoded = decode_times(encode_times(times))
        np.testing.assert_array_equal(np.isnan(decoded), np.isnan(times))
        np.testing.assert_array_equal(decoded[~np.isnan(decoded)], [1.0, 250.0])


class TestRunSignature:
    def test_stable_for_identical_inputs(self):
        a = run_signature("simulate", voter(1), make_rng(0), n=100, z=1)
        b = run_signature("simulate", voter(1), make_rng(7), n=100, z=1)
        assert a == b  # the generator's *state* must not enter the signature

    def test_differs_by_params_protocol_and_runner(self):
        base = run_signature("simulate", voter(1), make_rng(0), n=100, z=1)
        assert run_signature("simulate", voter(1), make_rng(0), n=101, z=1) != base
        assert run_signature("simulate", minority(3), make_rng(0), n=100, z=1) != base
        assert run_signature("other", voter(1), make_rng(0), n=100, z=1) != base


class TestCheckpointer:
    def test_cadence(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "c.ckpt", every=50)
        assert checkpointer.due(50)
        assert checkpointer.due(100)
        assert not checkpointer.due(51)

    def test_cadence_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="cadence"):
            Checkpointer(tmp_path / "c.ckpt", every=0)

    def test_save_before_begin_rejected(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "c.ckpt")
        with pytest.raises(CheckpointError, match="before begin"):
            checkpointer.save("simulate", 1, make_rng(0), {})

    def test_runner_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.ckpt"
        simulate(
            voter(1), Configuration(n=60, z=1, x0=30), 50_000, make_rng(1),
            checkpoint=Checkpointer(path, every=10),
        )
        resumed = Checkpointer.resume(path)
        with pytest.raises(CheckpointError, match="cannot resume"):
            resumed.begin("simulate_ensemble", "sha256:whatever")

    def test_signature_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.ckpt"
        config = Configuration(n=60, z=1, x0=30)
        simulate(
            voter(1), config, 50_000, make_rng(1),
            checkpoint=Checkpointer(path, every=10),
        )
        with pytest.raises(CheckpointError, match="different run"):
            # Different seedless params (n) => different signature.
            simulate(
                voter(1), Configuration(n=61, z=1, x0=30), 50_000, make_rng(1),
                checkpoint=Checkpointer.resume(path),
            )


class _StopAfterPolls:
    """Guard stand-in whose stop request fires after N should_stop polls."""

    def __init__(self, polls: int) -> None:
        self.remaining = polls
        self.signum = 15
        self.flushed = False

    @property
    def requested(self) -> bool:
        self.remaining -= 1
        return self.remaining <= 0

    def flush_registered(self) -> None:
        self.flushed = True


class TestBitIdenticalResume:
    N, Z = 96, 1
    BUDGET = 5000
    REPLICAS = 8
    SEED = 7

    def _config(self) -> Configuration:
        return wrong_consensus_configuration(self.N, self.Z)

    def _baseline_times(self) -> np.ndarray:
        return simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS,
        )

    def test_checkpointing_does_not_perturb_the_stream(self, tmp_path):
        times = simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS,
            checkpoint=Checkpointer(tmp_path / "e.ckpt", every=5),
        )
        np.testing.assert_array_equal(times, self._baseline_times())

    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        from repro.execution import GracefulExit

        path = tmp_path / "e.ckpt"
        guard = _StopAfterPolls(polls=37)
        with pytest.raises(GracefulExit):
            simulate_ensemble(
                voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
                self.REPLICAS,
                checkpoint=Checkpointer(path, every=5, guard=guard),
            )
        assert guard.flushed
        interrupted_at = load_checkpoint(path)
        assert not interrupted_at.complete
        assert 0 < interrupted_at.round < self.BUDGET
        times = simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS,
            checkpoint=Checkpointer.resume(path, every=5),
        )
        np.testing.assert_array_equal(times, self._baseline_times())

    def test_complete_checkpoint_replays_without_resimulating(self, tmp_path):
        path = tmp_path / "e.ckpt"
        first = simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, checkpoint=Checkpointer(path, every=5),
        )
        assert load_checkpoint(path).complete
        replayer = Checkpointer.resume(path, every=5)
        replayed = simulate_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, checkpoint=replayer,
        )
        np.testing.assert_array_equal(replayed, first)
        assert replayer.writes == 0  # nothing re-ran, nothing re-saved

    def test_convergence_stats_bit_identical_after_resume(self, tmp_path):
        from repro.execution import GracefulExit

        baseline = convergence_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS,
        )
        path = tmp_path / "e.ckpt"
        with pytest.raises(GracefulExit):
            convergence_ensemble(
                voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
                self.REPLICAS,
                checkpoint=Checkpointer(path, every=5, guard=_StopAfterPolls(11)),
            )
        resumed = convergence_ensemble(
            voter(1), self._config(), self.BUDGET, make_rng(self.SEED),
            self.REPLICAS, checkpoint=Checkpointer.resume(path, every=5),
        )
        assert resumed == baseline  # frozen dataclass: field-wise exact

    def test_simulate_resume_is_bit_identical(self, tmp_path):
        from repro.execution import GracefulExit

        config = Configuration(n=80, z=1, x0=1)
        baseline = simulate(voter(1), config, 50_000, make_rng(5), record=True)
        path = tmp_path / "s.ckpt"
        with pytest.raises(GracefulExit):
            simulate(
                voter(1), config, 50_000, make_rng(5), record=True,
                checkpoint=Checkpointer(path, every=3, guard=_StopAfterPolls(20)),
            )
        resumed = simulate(
            voter(1), config, 50_000, make_rng(5), record=True,
            checkpoint=Checkpointer.resume(path, every=3),
        )
        assert resumed.converged == baseline.converged
        assert resumed.rounds == baseline.rounds
        assert resumed.final_count == baseline.final_count
        np.testing.assert_array_equal(resumed.trajectory, baseline.trajectory)
