"""Tests for the REPRO_FAULT crashpoint registry and kill-and-resume smoke."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

from repro.execution import FAULT_ENV_VAR, FaultSpec, faults, parse_fault_spec

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _isolated_counters(monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestParseFaultSpec:
    def test_unset_means_unarmed(self):
        assert parse_fault_spec(None) is None
        assert parse_fault_spec("") is None
        assert parse_fault_spec("   ") is None

    def test_site_only_defaults_to_first_visit(self):
        assert parse_fault_spec("run:after_round") == FaultSpec(
            site="run:after_round", hit=1
        )

    def test_trailing_integer_selects_the_visit(self):
        assert parse_fault_spec("ensemble:after_replica:7") == FaultSpec(
            site="ensemble:after_replica", hit=7
        )

    def test_site_names_may_contain_colons(self):
        spec = parse_fault_spec("checkpoint:after_tmp_write")
        assert spec.site == "checkpoint:after_tmp_write"
        assert spec.hit == 1

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError, match="empty site"):
            parse_fault_spec(":3")

    def test_zero_hit_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            parse_fault_spec("site:0")


class TestVisitCounting:
    def test_unarmed_crashpoints_are_noops(self):
        assert not faults.armed()
        assert not faults.should_trip("anything")
        faults.crashpoint("anything")  # must not raise or exit

    def test_trips_on_the_selected_visit_only(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "site:3")
        assert faults.armed()
        assert not faults.should_trip("site")
        assert not faults.should_trip("site")
        assert faults.should_trip("site")
        assert not faults.should_trip("site")  # only the exact visit is fatal

    def test_other_sites_do_not_count(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "site:2")
        assert not faults.should_trip("other")
        assert not faults.should_trip("site")
        assert faults.should_trip("site")

    def test_spec_change_resets_counts(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "site:2")
        assert not faults.should_trip("site")
        monkeypatch.setenv(FAULT_ENV_VAR, "site:1")
        assert faults.should_trip("site")  # fresh count under the new spec


# The three crashpoints the ISSUE's acceptance criteria name: one at a
# replica-completion boundary, one at a round boundary, and one *inside*
# the checkpoint write's tmp-then-rename window.
SMOKE_SITES = [
    "ensemble:after_replica:2",
    "ensemble:after_round:25",
    "checkpoint:after_tmp_write:3",
]


@pytest.mark.parametrize("site", SMOKE_SITES)
def test_kill_and_resume_is_bit_identical(site, tmp_path):
    """Drive scripts/fault_smoke.py: kill, salvage, resume, compare."""
    env = dict(os.environ)
    env.pop(FAULT_ENV_VAR, None)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    completed = subprocess.run(
        [
            sys.executable, str(REPO_ROOT / "scripts" / "fault_smoke.py"),
            site, "--workdir", str(tmp_path),
        ],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, (
        f"fault_smoke failed for {site}:\n{completed.stdout}\n{completed.stderr}"
    )
    assert "PASS" in completed.stdout
