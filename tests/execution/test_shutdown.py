"""Tests for signal handling, graceful exits, and the CLI's exit codes."""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.execution import (
    EXIT_BENCH_TIMEOUT,
    EXIT_CODES,
    EXIT_ERROR,
    EXIT_FAULT_INJECTED,
    EXIT_INTERRUPTED,
    EXIT_INVALID_TRACE,
    EXIT_NOT_CONVERGED,
    EXIT_OK,
    EXIT_PERF_REGRESSION,
    GracefulExit,
    ShutdownGuard,
    load_checkpoint,
)
from repro.execution import shutdown as shutdown_module

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestExitCodes:
    def test_one_code_per_failure_class(self):
        codes = [
            EXIT_OK, EXIT_ERROR, EXIT_NOT_CONVERGED, EXIT_INVALID_TRACE,
            EXIT_PERF_REGRESSION, EXIT_INTERRUPTED, EXIT_BENCH_TIMEOUT,
            EXIT_FAULT_INJECTED,
        ]
        assert len(set(codes)) == len(codes)
        assert all(0 <= code < 256 for code in codes)

    def test_taxonomy_tuple_matches_the_constants(self):
        # EXIT_CODES is the single source of truth the docs generate from:
        # every exported EXIT_* constant appears exactly once, value-correct
        # and described.
        constants = {
            name: getattr(shutdown_module, name)
            for name in shutdown_module.__all__
            if name.startswith("EXIT_") and name != "EXIT_CODES"
        }
        table = {name: value for name, value, _ in EXIT_CODES}
        assert table == constants
        assert len(EXIT_CODES) == len(table)
        assert all(description for _, _, description in EXIT_CODES)

    def test_taxonomy_generated_into_api_docs(self):
        api = (REPO_ROOT / "docs" / "API.md").read_text()
        assert "## Exit codes" in api
        for name, value, _ in EXIT_CODES:
            assert f"| {value} | `{name}` |" in api, (
                f"{name} missing from docs/API.md — rerun "
                "scripts/generate_api_docs.py"
            )


class TestGracefulExit:
    def test_carries_signal_and_checkpoint(self):
        stop = GracefulExit(signal.SIGTERM, "run.ckpt")
        assert stop.signal_name == "SIGTERM"
        assert stop.checkpoint_path == "run.ckpt"
        assert "SIGTERM" in str(stop)
        assert "run.ckpt" in str(stop)

    def test_unknown_signal_number(self):
        assert GracefulExit(250).signal_name == "signal 250"


class TestShutdownGuard:
    def test_signal_sets_the_flag_only(self):
        with ShutdownGuard() as guard:
            assert not guard.requested
            os.kill(os.getpid(), signal.SIGTERM)
            # The handler runs between bytecodes; give it a beat.
            for _ in range(100):
                if guard.requested:
                    break
                time.sleep(0.01)
            assert guard.requested
            assert guard.signum == signal.SIGTERM

    def test_previous_handlers_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with ShutdownGuard():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_flush_registered(self):
        class Flushable:
            flushed = 0

            def flush(self):
                self.flushed += 1

        sink = Flushable()
        guard = ShutdownGuard()
        guard.register(sink)
        guard.register(object())  # no flush() — must be tolerated
        guard.flush_registered()
        assert sink.flushed == 1


class TestCliSigterm:
    """SIGTERM mid-run: exit 5, final checkpoint, strictly valid trace."""

    def test_sigterm_leaves_resumable_state(self, tmp_path):
        from repro.telemetry.jsonl import validate_trace

        env = dict(os.environ)
        env.pop("REPRO_FAULT", None)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        checkpoint = tmp_path / "run.ckpt"
        trace = tmp_path / "run.jsonl"
        # A voter run this large takes minutes — plenty of runway to
        # interrupt it long before it converges.
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "run", "voter",
                "--n", "10000000", "--rounds", "1000000000", "--seed", "1",
                "--checkpoint", str(checkpoint), "--checkpoint-every", "1000",
                "--trace", str(trace),
            ],
            cwd=tmp_path, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline and not checkpoint.exists():
                time.sleep(0.1)
            assert checkpoint.exists(), "no checkpoint appeared within 60s"
            process.send_signal(signal.SIGTERM)
            _, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == EXIT_INTERRUPTED
        assert "interrupted by SIGTERM" in stderr
        assert "repro resume" in stderr
        # The graceful path closed the writer: the trace was renamed into
        # place and validates *strictly*, with an interrupted run_end.
        records = validate_trace(trace)
        run_end = [r for r in records if r["kind"] == "run_end"][0]
        assert run_end["interrupted"] is True
        assert run_end["resumable_at"] >= 1
        state = load_checkpoint(checkpoint)
        assert not state.complete
        assert state.round >= 1
        assert state.meta["command"] == "run"
