"""Tests for the supervised parallel ensemble executor."""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.analysis.ensemble import convergence_ensemble, summarize_times
from repro.dynamics.config import Configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate_ensemble
from repro.execution.supervisor import (
    DEFAULT_SHARD_COUNT,
    SupervisorConfig,
    _effective_timeout,
    run_supervised_ensemble,
    shard_sizes,
    summarize_supervised,
    supervisor_from,
)
from repro.protocols import voter
from repro.telemetry import MetricsRecorder
from repro.telemetry.jsonl import validate_trace

PROTOCOL = voter(1)
CONFIG = Configuration(n=64, z=1, x0=32)
MAX_ROUNDS = 3000
REPLICAS = 8


def _run(workers, shards=4, seed=7, **kwargs):
    supervisor = SupervisorConfig(
        workers=workers, shards=shards, backoff_base_s=0.01,
        **kwargs.pop("supervisor_kwargs", {}),
    )
    return run_supervised_ensemble(
        PROTOCOL, CONFIG, MAX_ROUNDS, make_rng(seed), REPLICAS,
        supervisor=supervisor, **kwargs,
    )


class TestShardSizes:
    def test_balanced_partition(self):
        assert shard_sizes(8, 4) == [2, 2, 2, 2]
        assert shard_sizes(10, 4) == [3, 3, 2, 2]
        assert shard_sizes(5, 5) == [1, 1, 1, 1, 1]

    def test_deterministic(self):
        assert shard_sizes(13, 5) == shard_sizes(13, 5)

    def test_rejects_more_shards_than_replicas(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            shard_sizes(3, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard_sizes(0, 1)
        with pytest.raises(ValueError):
            shard_sizes(4, 0)


class TestWorkerCountInvariance:
    def test_workers_1_vs_4_bit_identical(self):
        one = _run(workers=1)
        four = _run(workers=4)
        assert np.array_equal(one.times, four.times, equal_nan=True)
        assert one.shard_sizes == four.shard_sizes
        assert one.failed_shards == four.failed_shards == 0

    def test_shard_count_is_part_of_the_stream_identity(self):
        assert not np.array_equal(
            _run(workers=1, shards=2).times,
            _run(workers=1, shards=4).times,
            equal_nan=True,
        )

    def test_default_shards_clamped_to_replicas(self):
        result = run_supervised_ensemble(
            PROTOCOL, CONFIG, MAX_ROUNDS, make_rng(7), 3,
            supervisor=SupervisorConfig(workers=2),
        )
        assert len(result.shard_sizes) == min(3, DEFAULT_SHARD_COUNT)
        assert result.times.size == 3


class TestFaultRecovery:
    def test_killed_worker_retries_to_identical_result(self, monkeypatch):
        clean = _run(workers=2)
        monkeypatch.setenv("REPRO_FAULT", "ensemble:after_round:10")
        monkeypatch.setenv("REPRO_FAULT_SHARD", "1")
        faulted = _run(workers=2)
        assert faulted.retries >= 1
        assert faulted.failed_shards == 0
        assert np.array_equal(faulted.times, clean.times, equal_nan=True)
        assert any(f.kind == "exit" for f in faulted.outcomes[1].failures)

    def test_sticky_fault_quarantines_the_shard(self, monkeypatch):
        clean = _run(workers=2)
        monkeypatch.setenv("REPRO_FAULT", "ensemble:after_round:10")
        monkeypatch.setenv("REPRO_FAULT_SHARD", "1")
        monkeypatch.setenv("REPRO_FAULT_STICKY", "1")
        result = _run(
            workers=2, supervisor_kwargs={"max_retries": 1}
        )
        assert result.failed_shards == 1
        assert result.degraded
        assert result.attempted_trials == REPLICAS
        assert result.times.size == REPLICAS - result.shard_sizes[1]
        # The surviving shards still match their unfaulted counterparts.
        sizes = clean.shard_sizes
        survivors = np.concatenate(
            [clean.times[: sizes[0]], clean.times[sizes[0] + sizes[1]:]]
        )
        assert np.array_equal(result.times, survivors, equal_nan=True)

    def test_invalid_fault_shard_env_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "ensemble:after_round:10")
        monkeypatch.setenv("REPRO_FAULT_SHARD", "not-a-shard")
        with pytest.raises(ValueError, match="REPRO_FAULT_SHARD"):
            _run(workers=1)


def _sleeper_worker(task):
    time.sleep(60.0)


class TestTimeouts:
    def test_hung_worker_is_killed_and_quarantined(self):
        supervisor = SupervisorConfig(
            workers=2, shards=2, timeout_s=0.2, max_retries=0, poll_s=0.02
        )
        result = run_supervised_ensemble(
            PROTOCOL, CONFIG, MAX_ROUNDS, make_rng(7), REPLICAS,
            supervisor=supervisor, _worker=_sleeper_worker,
        )
        assert result.failed_shards == 2
        assert result.timeouts == 2
        assert result.times.size == 0
        with pytest.raises(RuntimeError, match="all 2 shards failed"):
            summarize_supervised(result)

    def test_effective_timeout_tighter_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_TIMEOUT", raising=False)
        assert _effective_timeout(None) is None
        assert _effective_timeout(3.0) == 3.0
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "2.0")
        assert _effective_timeout(None) == 2.0
        assert _effective_timeout(3.0) == 2.0
        assert _effective_timeout(1.0) == 1.0
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "garbage")
        assert _effective_timeout(3.0) == 3.0


class TestMergedTrace:
    def test_merged_trace_validates_and_tags_shards(self, tmp_path):
        trace_path = tmp_path / "ensemble.jsonl"
        result = _run(workers=2, trace_path=trace_path)
        records = validate_trace(trace_path)
        start, end = records[0], records[-1]
        assert start["runner"] == "supervised_ensemble"
        assert start["params"]["shards"] == 4
        assert end["failed_shards"] == 0
        assert end["attempted_trials"] == REPLICAS
        rounds = [r for r in records if r["kind"] == "round"]
        assert {r["shard"] for r in rounds} == {0, 1, 2, 3}
        assert end["rounds_recorded"] == len(rounds)
        censored = int(np.isnan(result.times).sum())
        assert end["converged"] == result.times.size - censored
        # No per-shard intermediates left behind.
        assert list(tmp_path.iterdir()) == [trace_path]

    def test_merged_trace_is_worker_count_invariant(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _run(workers=1, trace_path=a)
        _run(workers=4, trace_path=b)
        assert a.read_bytes() == b.read_bytes()

    def test_columnar_merge_carries_the_same_records(self, tmp_path):
        from repro.telemetry import detect_trace_format, read_trace

        jsonl = tmp_path / "a.jsonl"
        columnar = tmp_path / "b.ctrace"
        _run(workers=2, trace_path=jsonl)
        _run(
            workers=2, trace_path=columnar,
            supervisor_kwargs={"trace_format": "columnar"},
        )
        assert detect_trace_format(columnar) == "columnar"
        records = validate_trace(columnar)
        assert records == read_trace(jsonl)
        # Shard fragments are merged and removed in this format too.
        assert sorted(tmp_path.iterdir()) == [jsonl, columnar]


class TestCheckpointing:
    def test_per_shard_checkpoints_resume(self, tmp_path):
        base = tmp_path / "run.ckpt"
        first = _run(workers=2, checkpoint_base=base, checkpoint_every=5)
        all_shard_files = sorted(tmp_path.glob("run.ckpt.shard*"))
        shard_files = [
            p for p in all_shard_files if not p.name.endswith(".heartbeat.json")
        ]
        assert len(shard_files) == 4
        for path in shard_files:
            assert json.loads(path.read_text())["complete"] is True
        # Heartbeats ride along with the checkpoints and end terminal.
        heartbeats = [p for p in all_shard_files if p not in shard_files]
        assert len(heartbeats) == 4
        for path in heartbeats:
            assert json.loads(path.read_text())["status"] == "done"
        # Re-running with the completed checkpoints replays the result.
        again = _run(workers=2, checkpoint_base=base, checkpoint_every=5)
        assert np.array_equal(first.times, again.times, equal_nan=True)


class TestRecorder:
    def test_metrics_recorder_sees_supervision_counters(self):
        recorder = MetricsRecorder()
        _run(workers=2, recorder=recorder)
        spans = recorder.metrics().spans
        assert "supervise" in spans
        counters = spans["supervise"].counters
        assert counters["shards"] == 4
        assert counters["workers"] == 2
        assert counters["failed_shards"] == 0


class TestSupervisorFrom:
    def test_overlays_explicit_arguments(self):
        base = SupervisorConfig(workers=2, shards=3, max_retries=5)
        cfg = supervisor_from(base, workers=8, shards=None)
        assert cfg.workers == 8
        assert cfg.shards == 3
        assert cfg.max_retries == 5

    def test_defaults_from_nothing(self):
        cfg = supervisor_from(None, None, 6)
        assert cfg.workers == 1
        assert cfg.shards == 6


class TestValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="workers"):
            _run(workers=0)
        with pytest.raises(ValueError, match="max_retries"):
            _run(workers=1, supervisor_kwargs={"max_retries": -1})
        with pytest.raises(ValueError, match="replicas"):
            run_supervised_ensemble(
                PROTOCOL, CONFIG, MAX_ROUNDS, make_rng(7), 0,
                supervisor=SupervisorConfig(workers=1),
            )


class TestIntegration:
    def test_simulate_ensemble_workers_delegates(self):
        times = simulate_ensemble(
            PROTOCOL, CONFIG, MAX_ROUNDS, make_rng(7), REPLICAS,
            workers=2, shards=4,
        )
        assert np.array_equal(times, _run(workers=2).times, equal_nan=True)

    def test_simulate_ensemble_warns_on_lost_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "ensemble:after_round:10")
        monkeypatch.setenv("REPRO_FAULT_SHARD", "1")
        monkeypatch.setenv("REPRO_FAULT_STICKY", "1")
        with pytest.warns(RuntimeWarning, match="shard"):
            times = simulate_ensemble(
                PROTOCOL, CONFIG, MAX_ROUNDS, make_rng(7), REPLICAS,
                workers=2, shards=4,
                supervisor=SupervisorConfig(
                    workers=2, shards=4, max_retries=0, backoff_base_s=0.01
                ),
            )
        assert times.size < REPLICAS

    def test_convergence_ensemble_supervised_stats(self):
        stats = convergence_ensemble(
            PROTOCOL, CONFIG, MAX_ROUNDS, make_rng(7), REPLICAS,
            workers=2, shards=4,
        )
        reference = summarize_supervised(_run(workers=1), budget=MAX_ROUNDS)
        assert stats == reference
        assert stats.failed_shards == 0
        assert stats.attempted_trials == REPLICAS


class TestSummarizeTimesDegradation:
    def test_defaults_mean_nothing_lost(self):
        stats = summarize_times(np.asarray([3.0, 5.0, np.nan]), budget=10)
        assert stats.failed_shards == 0
        assert stats.attempted_trials == stats.trials == 3
        assert not stats.degraded
        assert stats.lost_trials == 0

    def test_loss_accounting_surfaces_in_repr(self):
        stats = summarize_times(
            np.asarray([3.0, 5.0]), budget=10,
            failed_shards=1, attempted_trials=4,
        )
        assert stats.degraded
        assert stats.lost_trials == 2
        assert "failed_shards=1" in repr(stats)
        assert "attempted_trials=4" in repr(stats)
