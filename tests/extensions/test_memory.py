"""Tests for the finite-memory trend-following protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.memory import (
    initial_memory_state,
    run_memory_protocol,
    step_memory_protocol,
)


class TestInitialization:
    def test_counts_realized(self, rng):
        state = initial_memory_state(n=50, z=1, x0=20, ell=7, rng=rng)
        assert state.opinions.sum() == 20
        assert state.opinions[0] == 1
        assert np.all((state.remembered_counts >= 0) & (state.remembered_counts <= 7))

    def test_bad_x0_rejected(self, rng):
        with pytest.raises(ValueError, match="x0"):
            initial_memory_state(n=10, z=1, x0=11, ell=3, rng=rng)


class TestStep:
    def test_source_pinned(self, rng):
        state = initial_memory_state(n=40, z=0, x0=30, ell=5, rng=rng)
        for _ in range(10):
            state = step_memory_protocol(state, z=0, ell=5, rng=rng)
            assert state.opinions[0] == 0

    def test_memory_is_previous_count(self, rng):
        state = initial_memory_state(n=30, z=1, x0=15, ell=4, rng=rng)
        stepped = step_memory_protocol(state, z=1, ell=4, rng=rng)
        assert np.all((stepped.remembered_counts >= 0) & (stepped.remembered_counts <= 4))

    def test_consensus_is_stable(self, rng):
        """At the correct consensus every count is ell, trend steady: stays."""
        state = initial_memory_state(n=40, z=1, x0=40, ell=5, rng=rng, adversarial_memory=False)
        state.remembered_counts[:] = 5
        for _ in range(10):
            state = step_memory_protocol(state, z=1, ell=5, rng=rng)
            assert state.opinions.sum() == 40


class TestConvergence:
    def test_converges_from_wrong_consensus(self, rng):
        t = run_memory_protocol(n=2000, z=1, x0=1, ell=31, max_rounds=2000, rng=rng)
        assert t is not None

    def test_fast_compared_to_memoryless_bound(self, rng_factory):
        """The E12 separation: polylog rounds where Theorem 1 forces n^(1-eps)."""
        n = 4096
        times = []
        for i in range(5):
            t = run_memory_protocol(
                n=n, z=1, x0=1, ell=63, max_rounds=3000, rng=rng_factory(i)
            )
            assert t is not None
            times.append(t)
        lower_bound_for_memoryless = n ** 0.5  # Theorem 1 at eps = 1/2
        assert np.median(times) < lower_bound_for_memoryless

    def test_both_source_opinions(self, rng):
        for z in (0, 1):
            x0 = 1 if z == 1 else 1999
            t = run_memory_protocol(n=2000, z=z, x0=x0, ell=31, max_rounds=2000, rng=rng)
            assert t is not None
