"""Tests for the population-protocol engine and the broadcast protocol."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.extensions.population import (
    PopulationProtocol,
    broadcast_initial_states,
    broadcast_opinion,
    run_population_protocol,
    source_broadcast_protocol,
)


class TestEngine:
    def test_transition_table_validation(self):
        bad = PopulationProtocol(
            states=2, delta=lambda a, b: (a, 5), output=lambda s: s
        )
        with pytest.raises(ValueError, match="state space"):
            bad.transition_table()

    def test_inert_protocol_never_converges_to_other_opinion(self, rng):
        inert = PopulationProtocol(
            states=2, delta=lambda a, b: (a, b), output=lambda s: s
        )
        states = np.array([0] * 5 + [1] * 5)
        run = run_population_protocol(inert, states, 1, 2000, rng)
        assert not run.converged

    def test_pairs_are_distinct(self, rng):
        """A self-interaction would be visible for a protocol counting them."""
        hits = {"same": 0}

        def spy(a, b):
            return a, b

        protocol = PopulationProtocol(states=2, delta=spy, output=lambda s: s)
        # The engine guarantees i != j structurally; run and check it simply
        # doesn't crash and respects the interaction budget.
        states = np.zeros(10, dtype=np.int64)
        run = run_population_protocol(protocol, states, 0, 500, rng)
        assert run.converged  # all outputs are already 0
        assert run.interactions <= 512

    def test_small_population_rejected(self, rng):
        protocol = source_broadcast_protocol()
        with pytest.raises(ValueError, match="agents"):
            run_population_protocol(protocol, np.array([0]), 0, 10, rng)


class TestBroadcast:
    def test_converges_from_adversarial_opinions(self, rng):
        n = 300
        states = broadcast_initial_states(n, z=1, rng=rng, adversarial_informed=False)
        run = run_population_protocol(
            source_broadcast_protocol(), states, 1, 100 * n, rng, source_state=3
        )
        assert run.converged

    def test_parallel_time_is_logarithmic_shape(self, rng_factory):
        """Epidemic spread: parallel time grows like log n, not n."""
        times = []
        for n in (100, 400, 1600):
            runs = []
            for i in range(5):
                rng = rng_factory(n + i)
                states = broadcast_initial_states(
                    n, z=1, rng=rng, adversarial_informed=False
                )
                result = run_population_protocol(
                    source_broadcast_protocol(), states, 1, 200 * n, rng, source_state=3
                )
                assert result.converged
                runs.append(result.parallel_time(n))
            times.append(np.median(runs))
        # 16x more agents should cost far less than 16x the parallel time.
        assert times[2] / times[0] < 4.0

    def test_documented_limitation_false_informed_flags(self, rng):
        """With all flags adversarially set, this simplified protocol stalls.

        (The gap [22] closes with flag recycling; kept as a regression test
        of the documented behaviour.)
        """
        n = 100
        states = broadcast_initial_states(n, z=1, rng=rng, adversarial_informed=True)
        run = run_population_protocol(
            source_broadcast_protocol(), states, 1, 50 * n, rng, source_state=3
        )
        assert not run.converged

    def test_output_map(self):
        assert broadcast_opinion(0) == 0  # (opinion 0, uninformed)
        assert broadcast_opinion(1) == 0  # (opinion 0, informed)
        assert broadcast_opinion(2) == 1
        assert broadcast_opinion(3) == 1

    def test_source_pinned(self, rng):
        n = 50
        states = broadcast_initial_states(n, z=0, rng=rng, adversarial_informed=False)
        run = run_population_protocol(
            source_broadcast_protocol(), states, 0, 200 * n, rng, source_state=1
        )
        assert run.final_states[0] == 1

    def test_bad_z_rejected(self, rng):
        with pytest.raises(ValueError, match="z"):
            broadcast_initial_states(10, z=7, rng=rng)
