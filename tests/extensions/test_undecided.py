"""Tests for the undecided-state dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.undecided import (
    UndecidedState,
    initial_undecided_state,
    run_undecided,
    step_undecided,
)


class TestState:
    def test_counts_validated(self):
        with pytest.raises(ValueError, match="sum"):
            UndecidedState(n=10, z=1, ones=5, zeros=4, undecided=2)
        with pytest.raises(ValueError, match="non-negative"):
            UndecidedState(n=10, z=1, ones=11, zeros=-1, undecided=0)
        with pytest.raises(ValueError, match="source"):
            UndecidedState(n=10, z=1, ones=0, zeros=5, undecided=5)

    def test_helper_constructor(self):
        state = initial_undecided_state(10, z=1, ones=4, undecided=3)
        assert state.zeros == 3
        assert state.correct_count == 4


class TestStep:
    def test_conservation(self, rng):
        state = initial_undecided_state(100, z=1, ones=30, undecided=20)
        for _ in range(50):
            state = step_undecided(state, rng)
            assert state.ones + state.zeros + state.undecided == 100

    def test_correct_consensus_absorbing(self, rng):
        state = initial_undecided_state(50, z=1, ones=50, undecided=0)
        for _ in range(20):
            state = step_undecided(state, rng)
            assert state.is_correct_consensus

    def test_wrong_consensus_eroded_by_source(self, rng):
        """z=1 against all-zeros: the source seeds undecided agents."""
        state = initial_undecided_state(50, z=1, ones=1, undecided=0)
        seen_undecided = False
        for _ in range(200):
            state = step_undecided(state, rng)
            if state.undecided > 0:
                seen_undecided = True
                break
        assert seen_undecided

    def test_source_never_lost(self, rng):
        state = initial_undecided_state(40, z=0, ones=30, undecided=5)
        for _ in range(100):
            state = step_undecided(state, rng)
            assert state.zeros >= 1  # the source always displays 0


class TestRun:
    def test_converges_from_balanced_start(self, rng):
        state = initial_undecided_state(200, z=1, ones=100, undecided=0)
        converged, rounds, final = run_undecided(state, 100_000, rng)
        assert converged
        assert final.is_correct_consensus

    def test_budget_reported(self, rng):
        state = initial_undecided_state(500, z=1, ones=1, undecided=0)
        converged, rounds, _ = run_undecided(state, 5, rng)
        if not converged:
            assert rounds == 5

    def test_already_converged(self, rng):
        state = initial_undecided_state(30, z=0, ones=0, undecided=0)
        converged, rounds, _ = run_undecided(state, 10, rng)
        assert converged and rounds == 0

    def test_plain_consensus_is_fast(self, rng_factory):
        """Without adversarial structure, USD reaches *a* consensus quickly;
        with the source present it is the correct one from a fair start."""
        times = []
        for i in range(5):
            state = initial_undecided_state(400, z=1, ones=240, undecided=0)
            converged, rounds, _ = run_undecided(state, 10_000, rng_factory(i))
            assert converged
            times.append(rounds)
        assert np.median(times) < 600
