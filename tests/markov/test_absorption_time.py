"""Tests for exact absorption-time distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dynamics.config import Configuration
from repro.dynamics.run import simulate_ensemble
from repro.markov.absorption_time import absorption_time_cdf, exceedance_probability
from repro.markov.chain import FiniteMarkovChain
from repro.markov.exact import count_chain, exact_expected_convergence_time
from repro.protocols import voter


def absorbing_walk() -> FiniteMarkovChain:
    # Simple walk on 0..3 absorbed at 3.
    matrix = np.array(
        [
            [0.5, 0.5, 0.0, 0.0],
            [0.5, 0.0, 0.5, 0.0],
            [0.0, 0.5, 0.0, 0.5],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    return FiniteMarkovChain(matrix)


class TestCdf:
    def test_cdf_monotone_and_bounded(self):
        cdf = absorption_time_cdf(absorbing_walk(), [3], start=0, horizon=200)
        assert np.all(np.diff(cdf.cdf) >= -1e-12)
        assert cdf.cdf[0] == 0.0
        assert cdf.cdf[-1] <= 1.0 + 1e-12

    def test_start_on_target(self):
        cdf = absorption_time_cdf(absorbing_walk(), [3], start=3, horizon=5)
        assert np.all(cdf.cdf == 1.0)

    def test_first_step_probability_exact(self):
        # From state 2, P(tau <= 1) is exactly the one-step probability 1/2.
        cdf = absorption_time_cdf(absorbing_walk(), [3], start=2, horizon=3)
        assert cdf.cdf[1] == pytest.approx(0.5)

    def test_quantiles(self):
        cdf = absorption_time_cdf(absorbing_walk(), [3], start=2, horizon=500)
        median = cdf.quantile(0.5)
        assert median is not None and cdf.cdf[median] >= 0.5
        assert cdf.quantile(0.999999999) is None or cdf.cdf[-1] > 0.999999999

    def test_mean_from_tail_sum_matches_linear_solve(self):
        chain = absorbing_walk()
        cdf = absorption_time_cdf(chain, [3], start=0, horizon=5000)
        tail_sum = float(np.sum(1.0 - cdf.cdf))
        exact = chain.expected_hitting_times([3])[0]
        assert tail_sum == pytest.approx(exact, rel=1e-6)

    def test_validation(self):
        chain = absorbing_walk()
        with pytest.raises(ValueError, match="horizon"):
            absorption_time_cdf(chain, [3], 0, -1)
        with pytest.raises(ValueError, match="start"):
            absorption_time_cdf(chain, [3], 9, 5)
        cdf = absorption_time_cdf(chain, [3], 0, 5)
        with pytest.raises(ValueError, match="q"):
            cdf.quantile(0.0)


class TestAgainstMonteCarlo:
    def test_voter_cdf_matches_simulation(self, rng):
        n = 24
        config = Configuration(n=n, z=1, x0=12)
        chain = count_chain(voter(1), n, 1)
        horizon = 400
        cdf = absorption_time_cdf(chain, [n], start=12, horizon=horizon)
        times = simulate_ensemble(voter(1), config, horizon, rng, replicas=3000)
        for t in (25, 50, 100, 200):
            empirical = float(np.mean(np.nan_to_num(times, nan=np.inf) <= t))
            assert empirical == pytest.approx(cdf.cdf[t], abs=0.03)


class TestTheorem2Exactly:
    def test_voter_whp_bound_holds_exactly(self):
        """Theorem 2, with zero Monte-Carlo error at small n:

        P(tau > 2 n ln n) <= 1/n from EVERY admissible start.
        """
        for n in (16, 32, 64):
            chain = count_chain(voter(1), n, 1)
            horizon = int(math.ceil(2 * n * math.log(n)))
            survival = exceedance_probability(chain, [n], horizon)
            admissible = np.arange(1, n + 1)
            worst = float(survival[admissible].max())
            assert worst <= 1.0 / n, (n, worst)

    def test_exceedance_decreasing_in_horizon(self):
        chain = count_chain(voter(1), 20, 1)
        shorter = exceedance_probability(chain, [20], 50)
        longer = exceedance_probability(chain, [20], 150)
        assert np.all(longer <= shorter + 1e-12)
