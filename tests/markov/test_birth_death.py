"""Tests for the birth-death substrate (sequential setting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.birth_death import BirthDeathChain, sequential_birth_death_chain
from repro.markov.chain import FiniteMarkovChain
from repro.protocols import minority, voter


def symmetric_lazy_walk(size: int, move: float = 0.5) -> BirthDeathChain:
    up = np.full(size, move / 2)
    down = np.full(size, move / 2)
    up[-1] = 0.0
    down[0] = 0.0
    return BirthDeathChain(up=up, down=down)


class TestValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            BirthDeathChain(up=[0.7, 0.0], down=[0.0, 1.4])
        with pytest.raises(ValueError):
            BirthDeathChain(up=[-0.1, 0.0], down=[0.0, 0.5])

    def test_edge_constraints(self):
        with pytest.raises(ValueError, match=r"up\[N\]"):
            BirthDeathChain(up=[0.5, 0.5], down=[0.0, 0.5])
        with pytest.raises(ValueError, match=r"down\[0\]"):
            BirthDeathChain(up=[0.5, 0.0], down=[0.5, 0.5])


class TestClosedForms:
    def test_symmetric_walk_time_to_top(self):
        # Symmetric walk reflecting (lazily) at 0, move prob m:
        # E[T_{k -> k+1}] = 2(k+1)/m, so E[T_{0 -> N}] = N(N+1)/m.
        for size, move in ((6, 1.0), (9, 0.5)):
            chain = symmetric_lazy_walk(size, move)
            n_top = size - 1
            assert chain.expected_time_to_top(0) == pytest.approx(
                n_top * (n_top + 1) / move
            )

    def test_time_to_bottom_mirror(self):
        chain = symmetric_lazy_walk(8)
        assert chain.expected_time_to_bottom(7) == pytest.approx(
            chain.expected_time_to_top(0)
        )

    def test_matches_generic_chain_solver(self):
        chain = symmetric_lazy_walk(7)
        generic = FiniteMarkovChain(chain.transition_matrix())
        times = generic.expected_hitting_times([6])
        for start in range(7):
            assert chain.expected_time_to_top(start) == pytest.approx(
                times[start], rel=1e-9
            )

    def test_ruin_probability_symmetric(self):
        chain = symmetric_lazy_walk(11)
        for start in range(11):
            assert chain.ruin_probability(start) == pytest.approx(1 - start / 10)

    def test_ruin_probability_biased(self):
        # p up, q down: classical formula with rho = q/p.
        p_up, p_down = 0.3, 0.2
        size = 9
        up = np.full(size, p_up)
        down = np.full(size, p_down)
        up[-1] = 0.0
        down[0] = 0.0
        chain = BirthDeathChain(up=up, down=down)
        rho = p_down / p_up
        n_top = size - 1
        for start in (1, 4, 7):
            expected = (rho**start - rho**n_top) / (1 - rho**n_top)
            assert chain.ruin_probability(start) == pytest.approx(expected, rel=1e-9)

    def test_stuck_region_gives_infinite_time(self):
        up = np.array([0.0, 0.5, 0.0])
        down = np.array([0.0, 0.25, 0.25])
        chain = BirthDeathChain(up=up, down=down)
        assert np.isinf(chain.expected_time_to_top(0))


class TestSequentialChains:
    def test_voter_sequential_chain_is_valid(self):
        chain = sequential_birth_death_chain(voter(1), 30, 1)
        assert chain.size == 31
        assert chain.up[30] == 0.0

    def test_consensus_absorbing(self):
        chain = sequential_birth_death_chain(minority(3), 30, 1)
        assert chain.up[30] == 0.0 and chain.down[30] == 0.0

    def test_sequential_lower_bound_shape(self):
        """[14]: sequential convergence takes Omega(n) parallel rounds.

        Check the exact expected time for the Voter from the worst start at
        a few sizes: time / n / n (activations -> parallel rounds -> per-n)
        should not shrink.
        """
        per_n = []
        for n in (16, 32, 64, 128):
            chain = sequential_birth_death_chain(voter(1), n, 1)
            activations = chain.expected_time_to_top(1)
            parallel_rounds = activations / n
            per_n.append(parallel_rounds / n)
        assert min(per_n) > 0.3  # Omega(n) with a visible constant

    def test_minority_sequential_slower_than_voter(self):
        """Minority's adverse drift on (n/2, n) makes it far slower sequentially."""
        n = 40
        voter_time = sequential_birth_death_chain(voter(1), n, 1).expected_time_to_top(
            n // 2
        )
        minority_time = sequential_birth_death_chain(
            minority(3), n, 1
        ).expected_time_to_top(n // 2)
        assert minority_time > 10 * voter_time
