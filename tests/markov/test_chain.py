"""Tests for the generic finite-chain substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.chain import FiniteMarkovChain


def three_state_chain() -> FiniteMarkovChain:
    # 0 absorbing, 1 mixes, 2 drifts to 1.
    return FiniteMarkovChain(
        np.array(
            [
                [1.0, 0.0, 0.0],
                [0.3, 0.4, 0.3],
                [0.0, 0.6, 0.4],
            ]
        )
    )


class TestValidation:
    def test_row_sums_enforced(self):
        with pytest.raises(ValueError, match="sums"):
            FiniteMarkovChain(np.array([[0.5, 0.4], [0.0, 1.0]]))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            FiniteMarkovChain(np.array([[1.2, -0.2], [0.0, 1.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            FiniteMarkovChain(np.ones((2, 3)) / 3)

    def test_matrix_is_read_only(self):
        chain = three_state_chain()
        with pytest.raises(ValueError):
            chain.transition[0, 0] = 0.5


class TestStructure:
    def test_absorbing_states(self):
        np.testing.assert_array_equal(three_state_chain().absorbing_states(), [0])

    def test_expected_change(self):
        chain = three_state_chain()
        assert chain.expected_change(1) == pytest.approx(0.3 * 0 + 0.4 * 1 + 0.3 * 2 - 1)

    def test_step_distribution(self):
        chain = three_state_chain()
        mu = np.array([0.0, 1.0, 0.0])
        np.testing.assert_allclose(chain.step_distribution(mu), [0.3, 0.4, 0.3])


class TestHitting:
    def test_gambler_ruin_probabilities(self):
        # Symmetric walk on 0..4 with absorbing ends: P(hit 4 before 0 | x) = x/4.
        size = 5
        matrix = np.zeros((size, size))
        matrix[0, 0] = matrix[size - 1, size - 1] = 1.0
        for x in range(1, size - 1):
            matrix[x, x - 1] = matrix[x, x + 1] = 0.5
        chain = FiniteMarkovChain(matrix)
        h = chain.hitting_probabilities([size - 1], [0])
        np.testing.assert_allclose(h, np.arange(size) / (size - 1), atol=1e-10)

    def test_symmetric_walk_hitting_times(self):
        # E[T_absorb from x] = x (N - x) for the simple walk with absorbing ends.
        size = 7
        matrix = np.zeros((size, size))
        matrix[0, 0] = matrix[size - 1, size - 1] = 1.0
        for x in range(1, size - 1):
            matrix[x, x - 1] = matrix[x, x + 1] = 0.5
        chain = FiniteMarkovChain(matrix)
        times = chain.expected_hitting_times([0, size - 1])
        states = np.arange(size)
        np.testing.assert_allclose(times, states * (size - 1 - states), atol=1e-9)

    def test_infinite_time_where_target_avoidable(self):
        # From state 1 the chain may absorb at 0 and never reach 2.
        chain = three_state_chain()
        times = chain.expected_hitting_times([2])
        assert times[2] == 0.0
        assert np.isinf(times[1]) and np.isinf(times[0])

    def test_eventual_hitting_probabilities(self):
        chain = three_state_chain()
        p = chain.eventual_hitting_probabilities([0])
        # Both transient states are eventually absorbed at 0 a.s.
        np.testing.assert_allclose(p, [1.0, 1.0, 1.0], atol=1e-10)
        p2 = chain.eventual_hitting_probabilities([2])
        assert p2[2] == 1.0
        assert 0.0 < p2[1] < 1.0

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            three_state_chain().expected_hitting_times([7])

    def test_overlapping_target_avoid_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            three_state_chain().hitting_probabilities([0], [0])


class TestStationary:
    def test_two_state_closed_form(self):
        chain = FiniteMarkovChain(np.array([[0.9, 0.1], [0.4, 0.6]]))
        pi = chain.stationary_distribution()
        np.testing.assert_allclose(pi, [0.8, 0.2], atol=1e-10)

    def test_reducible_chain_rejected(self):
        chain = FiniteMarkovChain(np.eye(3))
        with pytest.raises(ValueError, match="reducible"):
            chain.stationary_distribution()


class TestSampling:
    def test_sample_path_respects_support(self, rng):
        chain = three_state_chain()
        path = chain.sample_path(2, 200, rng)
        assert path[0] == 2
        assert np.all((path >= 0) & (path <= 2))
        # Once at the absorbing state, the path stays there.
        hits = np.nonzero(path == 0)[0]
        if len(hits):
            assert np.all(path[hits[0]:] == 0)

    def test_empirical_transition_frequencies(self, rng):
        chain = three_state_chain()
        path = chain.sample_path(1, 20_000, rng)
        visits_to_2 = path[:-1] == 2
        if visits_to_2.sum() > 100:
            frequency_up = np.mean(path[1:][visits_to_2] == 1)
            assert abs(frequency_up - 0.6) < 0.05

    def test_bad_start_rejected(self, rng):
        with pytest.raises(ValueError, match="start"):
            three_state_chain().sample_path(5, 10, rng)
