"""Tests for stochastic-monotonicity checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.coupling import is_stochastically_monotone, tables_are_monotone
from repro.markov.exact import count_chain
from repro.protocols import majority, minority, two_choices, voter


class TestTableCondition:
    def test_voter_monotone(self):
        assert tables_are_monotone(voter(3))

    def test_majority_monotone(self):
        assert tables_are_monotone(majority(5))

    def test_two_choices_monotone(self):
        assert tables_are_monotone(two_choices())

    def test_minority_not_monotone(self):
        assert not tables_are_monotone(minority(3))


class TestExactCheck:
    @pytest.mark.parametrize("protocol", [voter(1), majority(3), two_choices()])
    @pytest.mark.parametrize("z", [0, 1])
    def test_monotone_tables_give_monotone_chains(self, protocol, z):
        chain = count_chain(protocol, 40, z)
        assert is_stochastically_monotone(chain)

    def test_minority3_chain_is_marginally_monotone(self):
        """The table condition is sufficient, not necessary: Minority(3)'s
        tables are non-monotone, yet its count chain IS stochastically
        monotone — the mean map ``x + n F(x/n)`` has slope
        ``1 + F'(p) >= 0`` everywhere (with equality exactly at p = 1/2)."""
        chain = count_chain(minority(3), 40, 1)
        assert not tables_are_monotone(minority(3))
        assert is_stochastically_monotone(chain)

    def test_minority15_chain_not_monotone(self):
        """Larger samples push ``1 + F'(1/2)`` below 0 (phi'(1/2) ~ -3.1 at
        ell = 15): starting higher lands you stochastically *lower* — the
        overshoot in coupling language."""
        chain = count_chain(minority(15), 40, 1)
        assert not is_stochastically_monotone(chain)

    def test_hand_built_counterexample(self):
        from repro.markov.chain import FiniteMarkovChain

        # State 1 jumps below state 0's support: not monotone.
        matrix = np.array(
            [
                [0.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        assert not is_stochastically_monotone(FiniteMarkovChain(matrix))


class TestConsequences:
    def test_monotonicity_justifies_worst_start_for_voter(self):
        """For a monotone chain, expected hitting times of the top are
        non-increasing in the start — the all-wrong start is the worst,
        as the experiments assume for the Voter."""
        chain = count_chain(voter(1), 30, 1)
        times = chain.expected_hitting_times([30])
        admissible = times[1:31]
        assert np.all(np.diff(admissible) <= 1e-9)

    def test_minority_violates_that_ordering(self):
        """Without monotonicity the ordering genuinely fails: for Minority
        the near-wrong-consensus start is *faster* than the mid-well start
        to reach the escape threshold."""
        chain = count_chain(minority(3), 40, 1)
        threshold = list(range(35, 41))
        times = chain.expected_hitting_times(threshold)
        assert times[2] < times[20] * 1.01  # x=2 is not slower than x=20
