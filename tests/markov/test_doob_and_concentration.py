"""Tests for the Doob decomposition and concentration bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bias import expected_next_count
from repro.dynamics.config import Configuration
from repro.dynamics.run import simulate
from repro.markov.concentration import (
    azuma_tail,
    azuma_with_jumps_tail,
    empirical_tail_frequency,
    hoeffding_tail,
    hoeffding_two_sided,
)
from repro.markov.doob import count_chain_doob, doob_decomposition
from repro.protocols import minority, voter


class TestDoobDecomposition:
    def test_reconstruction_is_exact(self, rng):
        result = simulate(
            minority(3), Configuration(n=300, z=1, x0=220), 100, rng, record=True
        )
        decomposition = count_chain_doob(minority(3), 300, 1, result.trajectory)
        assert decomposition.reconstruction_error() < 1e-9

    def test_unshifted_variant(self, rng):
        result = simulate(
            voter(1), Configuration(n=100, z=1, x0=50), 60, rng, record=True
        )
        decomposition = count_chain_doob(
            voter(1), 100, 1, result.trajectory, shifted=False
        )
        assert decomposition.reconstruction_error() < 1e-9
        # For the Voter, the compensator is the accumulated source pull
        # z(1 - P1) = 1 - x/n > 0, so A is non-decreasing.
        assert np.all(np.diff(decomposition.compensator) >= -1e-9)

    def test_supermartingale_interval_has_nonincreasing_compensator(self, rng):
        """On the F<0 interval, the shifted compensator steps are negative.

        This is Claim 7's engine: drift <= x + 1 makes A non-increasing for
        Y_t = X_t - t.
        """
        n = 400
        result = simulate(
            minority(3), Configuration(n=n, z=1, x0=300), 80, rng, record=True
        )
        decomposition = count_chain_doob(minority(3), n, 1, result.trajectory)
        inside = (result.trajectory[:-1] >= 0.55 * n) & (
            result.trajectory[:-1] <= 0.95 * n
        )
        steps = np.diff(decomposition.compensator)
        assert np.all(steps[inside] <= 1e-9)

    def test_martingale_increments_have_zero_mean(self, rng_factory):
        """Averaged over many runs, sum of martingale increments ~ 0."""
        n = 200
        totals = []
        for i in range(300):
            rng = rng_factory(i)
            result = simulate(
                minority(3), Configuration(n=n, z=1, x0=140), 30, rng, record=True
            )
            d = count_chain_doob(minority(3), n, 1, result.trajectory)
            totals.append(d.martingale[-1] - d.martingale[0])
        standard_error = np.std(totals) / np.sqrt(len(totals))
        assert abs(np.mean(totals)) < 5 * standard_error + 1e-9

    def test_generic_decomposition_on_synthetic_chain(self, rng):
        # Biased walk with known drift mu(y) = y + 0.25.
        steps = rng.choice([-1, 0, 1], size=500, p=[0.25, 0.25, 0.5])
        path = np.concatenate([[0.0], np.cumsum(steps)])
        decomposition = doob_decomposition(path, lambda y: y + 0.25)
        assert decomposition.reconstruction_error() < 1e-9
        np.testing.assert_allclose(
            decomposition.compensator, 0.25 * np.arange(len(path)), atol=1e-9
        )

    def test_single_point_path(self):
        decomposition = doob_decomposition(np.array([5.0]), lambda y: y)
        assert decomposition.reconstruction_error() == 0.0

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            doob_decomposition(np.array([]), lambda y: y)


class TestHoeffding:
    def test_bound_values(self):
        assert hoeffding_tail(100, 0.0) == 1.0
        assert hoeffding_tail(100, 10.0) == pytest.approx(np.exp(-2.0))
        assert hoeffding_two_sided(100, 10.0) == pytest.approx(2 * np.exp(-2.0))

    def test_bound_dominates_empirical_tails(self, rng):
        """Hoeffding really is an upper bound for binomial deviations."""
        n, p, trials = 400, 0.3, 5000
        samples = rng.binomial(n, p, size=trials).astype(float)
        for delta in (10, 20, 40):
            empirical = empirical_tail_frequency(samples, n * p, delta)
            bound = hoeffding_two_sided(n, delta)
            assert empirical <= bound + 0.02

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            hoeffding_tail(0, 1.0)
        with pytest.raises(ValueError):
            hoeffding_tail(10, -1.0)


class TestAzuma:
    def test_azuma_closed_form(self):
        bound = azuma_tail([1.0] * 100, 20.0)
        assert bound == pytest.approx(2 * np.exp(-400 / 200))

    def test_azuma_dominates_simple_walk(self, rng):
        walks = np.cumsum(rng.choice([-1.0, 1.0], size=(3000, 64)), axis=1)
        for delta in (8.0, 16.0, 24.0):
            empirical = np.mean(np.abs(walks[:, -1]) > delta)
            assert empirical <= azuma_tail([1.0] * 64, delta) + 0.02

    def test_jump_variant_reduces_to_classical(self):
        classical = azuma_tail([2.0] * 50, 10.0)
        with_jumps = azuma_with_jumps_tail(50, 2.0, 10.0, jump_probability=0.0)
        assert with_jumps == pytest.approx(classical)

    def test_jump_probability_added(self):
        base = azuma_with_jumps_tail(50, 2.0, 10.0, 0.0)
        assert azuma_with_jumps_tail(50, 2.0, 10.0, 0.1) == pytest.approx(
            min(1.0, base + 0.1)
        )

    @given(st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=25, deadline=None)
    def test_bounds_are_probabilities(self, delta):
        assert 0.0 <= azuma_tail([1.0] * 10, delta) <= 1.0
        assert 0.0 <= hoeffding_two_sided(10, delta) <= 1.0


class TestOneStepConcentration:
    def test_paper_assumption_iii_holds_empirically(self, rng):
        """P(|X' - E[X'|x]| > n^(1/2 + eps/4)) is tiny, as the proofs use."""
        from repro.dynamics.engine import step_count

        protocol = minority(3)
        n, z, x = 2500, 1, 1600
        epsilon = 0.5
        threshold = n ** (0.5 + epsilon / 4)
        mean = expected_next_count(protocol, n, z, x)
        samples = np.array([step_count(protocol, n, z, x, rng) for _ in range(2000)])
        frequency = empirical_tail_frequency(samples.astype(float), mean, threshold)
        assert frequency <= 2 * np.exp(-2 * n ** (epsilon / 2)) + 0.01
