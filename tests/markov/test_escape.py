"""Tests for the Theorem-6 escape checker on synthetic and count chains."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bias import expected_next_count
from repro.markov.escape import EscapeProblem, verify_escape_theorem
from repro.protocols import minority


def supermartingale_problem(n: int, epsilon: float = 0.5) -> EscapeProblem:
    """A lazy downward-biased walk: drift mu(x) = x - 0.1, tiny tails."""
    return EscapeProblem(
        n=n,
        a1=0.25,
        a2=0.5,
        a3=0.75,
        epsilon=epsilon,
        drift=lambda x: np.asarray(x, dtype=float) - 0.1,
        jump_tail=math.exp(-math.sqrt(n)),
        step_tail=2 * math.exp(-2 * n ** (epsilon / 2)),
    )


class TestEscapeProblem:
    def test_constant_ordering_enforced(self):
        with pytest.raises(ValueError, match="a1 < a2 < a3"):
            EscapeProblem(
                n=100, a1=0.5, a2=0.5, a3=0.75, epsilon=0.5,
                drift=lambda x: x, jump_tail=0.0, step_tail=0.0,
            )

    def test_horizon_and_start(self):
        problem = supermartingale_problem(10_000)
        assert problem.horizon == 100  # n^(1/2)
        assert problem.start == 6250  # (0.5 + 0.75)/2 * n


class TestVerdicts:
    def test_supermartingale_chain_passes(self):
        verdict = verify_escape_theorem(supermartingale_problem(100_000))
        assert verdict.drift_ok
        assert verdict.failure_probability < 0.5
        assert verdict.holds_whp

    def test_upward_drift_fails_assumption_i(self):
        problem = EscapeProblem(
            n=10_000, a1=0.25, a2=0.5, a3=0.75, epsilon=0.5,
            drift=lambda x: np.asarray(x, dtype=float) + 5.0,
            jump_tail=0.0, step_tail=0.0,
        )
        verdict = verify_escape_theorem(problem)
        assert not verdict.drift_ok
        assert verdict.worst_drift_margin < 0

    def test_large_jump_tail_fails(self):
        problem = EscapeProblem(
            n=10_000, a1=0.25, a2=0.5, a3=0.75, epsilon=0.5,
            drift=lambda x: np.asarray(x, dtype=float),
            jump_tail=0.5, step_tail=0.0,
        )
        verdict = verify_escape_theorem(problem)
        assert verdict.drift_ok
        assert not verdict.holds_whp

    def test_failure_probability_shrinks_with_n(self):
        small = verify_escape_theorem(supermartingale_problem(10_000))
        large = verify_escape_theorem(supermartingale_problem(1_000_000))
        assert large.failure_probability <= small.failure_probability


class TestCountChainInstance:
    def test_minority_case1_interval_passes(self):
        """The count chain of Minority on its F<0 interval fits Theorem 6."""
        protocol = minority(3)
        n, z = 50_000, 1
        # The narrow interval (alpha = 1/32) makes the confinement bound
        # vacuous at eps = 1/2 for this n; eps = 3/4 trades horizon for a
        # meaningful tail, exactly as the theorem's quantifiers allow.
        epsilon = 0.75
        problem = EscapeProblem(
            n=n,
            a1=0.625,
            a2=0.75,
            a3=0.875,
            epsilon=epsilon,
            drift=lambda x: np.asarray(expected_next_count(protocol, n, z, x)),
            jump_tail=math.exp(-2 * math.sqrt(n)),
            step_tail=2 * math.exp(-2 * n ** (epsilon / 2)),
        )
        verdict = verify_escape_theorem(problem)
        assert verdict.drift_ok
        assert verdict.holds_whp
        assert verdict.horizon == int(n ** (1 - epsilon))

    def test_escape_simulated_slower_than_horizon(self, rng):
        """Simulation agreement: the chain stays under a3 n for >= T rounds."""
        from repro.dynamics.engine import step_count

        protocol = minority(3)
        n, z = 4096, 1
        epsilon = 0.5
        horizon = int(n ** (1 - epsilon))
        start = int(0.8125 * n)  # (a2 + a3)/2 with a2=0.75, a3=0.875
        for _ in range(3):
            x = start
            escaped_at = None
            for t in range(1, horizon + 1):
                x = step_count(protocol, n, z, x, rng)
                if x >= 0.875 * n:
                    escaped_at = t
                    break
            assert escaped_at is None, f"escaped at {escaped_at} < {horizon}"
