"""Tests for the exact count-chain construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bias import expected_next_count
from repro.dynamics.config import Configuration
from repro.markov.exact import (
    count_chain,
    exact_expected_convergence_time,
    transition_row,
)
from repro.protocols import majority, minority, voter


class TestTransitionRow:
    @pytest.mark.parametrize("protocol", [voter(1), minority(3), majority(3)])
    @pytest.mark.parametrize("z", [0, 1])
    def test_rows_are_distributions(self, protocol, z):
        n = 30
        low, high = Configuration.count_bounds(n, z)
        for x in range(low, high + 1):
            row = transition_row(protocol, n, z, x)
            assert row.min() >= -1e-12
            assert row.sum() == pytest.approx(1.0, abs=1e-9)

    def test_row_mean_matches_drift(self):
        protocol = minority(3)
        n, z = 40, 1
        for x in (1, 10, 25, 39):
            row = transition_row(protocol, n, z, x)
            mean = row @ np.arange(n + 1)
            assert mean == pytest.approx(expected_next_count(protocol, n, z, x), abs=1e-9)

    def test_consensus_row_is_point_mass(self):
        row = transition_row(minority(3), 20, 1, 20)
        assert row[20] == pytest.approx(1.0)
        row0 = transition_row(minority(3), 20, 0, 0)
        assert row0[0] == pytest.approx(1.0)

    def test_support_respects_source(self):
        # z = 1: X_{t+1} >= 1 always (the source holds 1).
        row = transition_row(voter(1), 25, 1, 10)
        assert row[0] == 0.0


class TestCountChain:
    def test_chain_is_stochastic_and_absorbing_at_consensus(self):
        chain = count_chain(minority(3), 25, 1)
        assert 25 in chain.absorbing_states()

    def test_inadmissible_states_frozen(self):
        chain = count_chain(voter(1), 20, 1)
        # x = 0 impossible when z = 1: modeled as a frozen self-loop.
        assert chain.transition[0, 0] == 1.0

    def test_size_guard(self):
        with pytest.raises(ValueError, match="exceeds"):
            count_chain(voter(1), 100_000, 1)


class TestExactConvergenceTime:
    def test_voter_exact_matches_monte_carlo(self, rng_factory):
        from repro.dynamics.run import simulate

        config = Configuration(n=40, z=1, x0=1)
        exact = exact_expected_convergence_time(voter(1), config)
        samples = [
            simulate(voter(1), config, 10**6, rng_factory(i)).rounds
            for i in range(200)
        ]
        mean = np.mean(samples)
        standard_error = np.std(samples) / np.sqrt(len(samples))
        assert abs(mean - exact) < 5 * standard_error + 1e-9

    def test_time_zero_at_consensus(self):
        config = Configuration(n=30, z=0, x0=0)
        assert exact_expected_convergence_time(voter(1), config) == 0.0

    def test_monotone_in_wrongness_for_voter(self):
        # Starting farther from the correct consensus cannot be faster.
        times = [
            exact_expected_convergence_time(voter(1), Configuration(n=30, z=1, x0=x))
            for x in (25, 15, 5, 1)
        ]
        assert times == sorted(times)

    def test_minority_exact_time_explodes_with_n(self):
        """Theorem 1 seen exactly: witness-side expected times grow fast."""
        times = []
        for n in (16, 32, 48):
            config = Configuration(n=n, z=1, x0=(3 * n) // 4)
            times.append(exact_expected_convergence_time(minority(3), config))
        assert times[0] < times[1] < times[2]
        # Doubling n much more than doubles the expected time (super-linear).
        assert times[2] / times[1] > 2.0

    def test_prop3_violator_rejected(self):
        from repro.core.protocol import Protocol

        bad = Protocol(ell=1, g0=[0.1, 1.0], g1=[0.0, 1.0])
        with pytest.raises(ValueError, match="Proposition 3"):
            exact_expected_convergence_time(bad, Configuration(n=10, z=1, x0=5))
