"""Tests for the large-deviations machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.mean_field import mean_field_map
from repro.markov.large_deviations import bernoulli_kl, quasi_potential, step_rate
from repro.protocols import majority, minority, voter


class TestBernoulliKl:
    def test_zero_iff_equal(self):
        assert bernoulli_kl(0.3, 0.3) == 0.0
        assert bernoulli_kl(0.3, 0.4) > 0.0

    def test_closed_form(self):
        q, p = 0.7, 0.5
        expected = q * math.log(q / p) + (1 - q) * math.log((1 - q) / (1 - p))
        assert bernoulli_kl(q, p) == pytest.approx(expected)

    def test_degenerate_reference(self):
        assert bernoulli_kl(1.0, 1.0) == 0.0
        assert bernoulli_kl(0.5, 1.0) == float("inf")
        assert bernoulli_kl(0.0, 0.0) == 0.0

    def test_degenerate_argument(self):
        assert bernoulli_kl(0.0, 0.3) == pytest.approx(-math.log(0.7))
        assert bernoulli_kl(1.0, 0.3) == pytest.approx(-math.log(0.3))

    def test_validation(self):
        with pytest.raises(ValueError):
            bernoulli_kl(1.2, 0.5)


class TestStepRate:
    def test_zero_along_the_drift(self):
        """Following the mean-field map costs no action."""
        for protocol in (minority(3), majority(3)):
            for p in (0.1, 0.35, 0.6, 0.9):
                q = float(mean_field_map(protocol, p))
                assert step_rate(protocol, p, q) < 1e-8

    def test_positive_off_the_drift(self):
        protocol = minority(3)
        p = 0.6
        drift_target = float(mean_field_map(protocol, p))
        assert step_rate(protocol, p, drift_target + 0.1) > 1e-3
        assert step_rate(protocol, p, drift_target - 0.1) > 1e-3

    def test_voter_rate_is_kl_to_identity(self):
        # Voter: P0 = P1 = p, so I(p -> q) = KL(q || p) with no split freedom
        # advantage (all agents behave identically).
        p, q = 0.4, 0.6
        assert step_rate(voter(1), p, q) == pytest.approx(
            bernoulli_kl(q, p), abs=1e-6
        )

    def test_impossible_moves_are_infinite(self):
        # From consensus 1, minority keeps everyone at 1 (P1(1) = 1): moving
        # anywhere else has infinite rate.
        assert step_rate(minority(3), 1.0, 0.5) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            step_rate(minority(3), 1.5, 0.5)


class TestQuasiPotential:
    def test_zero_when_drift_carries_you(self):
        """Majority from 0.6 flows to 1 for free: V ~ 0.

        The grid DP pays a small discretization toll (the drift path lands
        between grid nodes), so "free" means orders of magnitude below any
        genuine barrier.
        """
        value, _ = quasi_potential(majority(3), 0.6, 0.9, grid_points=41)
        assert value < 5e-3

    def test_positive_against_the_drift(self):
        value, _ = quasi_potential(minority(3), 0.5, 0.875, grid_points=41)
        assert value > 0.1

    def test_monotone_in_target(self):
        near, _ = quasi_potential(minority(3), 0.5, 0.7, grid_points=41)
        far, _ = quasi_potential(minority(3), 0.5, 0.9, grid_points=41)
        assert far >= near - 1e-9

    def test_predicts_measured_well_depth_slope(self):
        """The headline: V(0.5 -> 0.875) matches the E18 exponential slope.

        Exact well depths at n=16..48 grow like exp(0.334 n); the
        Freidlin-Wentzell action on a modest grid lands within a few
        percent of that slope.
        """
        from repro.markov.exact import count_chain

        depths = []
        sizes = (16, 32, 48)
        for n in sizes:
            chain = count_chain(minority(3), n, 1)
            threshold = int(0.875 * n)
            escape = chain.expected_hitting_times(list(range(threshold, n + 1)))
            depths.append(float(escape[n // 2]))
        measured_slope = math.log(depths[-1] / depths[0]) / (sizes[-1] - sizes[0])
        predicted, _ = quasi_potential(minority(3), 0.5, 0.875, grid_points=81)
        assert predicted == pytest.approx(measured_slope, rel=0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            quasi_potential(minority(3), 0.9, 0.5)
