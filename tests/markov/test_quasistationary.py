"""Tests for quasi-stationary well analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.exact import count_chain
from repro.markov.quasistationary import quasi_stationary
from repro.protocols import minority


class TestBasics:
    def test_two_state_well_closed_form(self):
        # Well = single state with survival s: lambda_1 = s exactly.
        result = quasi_stationary(np.array([[0.9]]))
        assert result.survival_rate == pytest.approx(0.9)
        assert result.mean_escape_time == pytest.approx(10.0)

    def test_uniform_leak_well(self):
        # Doubly symmetric 2-state well with total leak 0.1 per step.
        q = np.array([[0.45, 0.45], [0.45, 0.45]])
        result = quasi_stationary(q)
        assert result.survival_rate == pytest.approx(0.9, abs=1e-9)
        np.testing.assert_allclose(result.distribution, [0.5, 0.5], atol=1e-9)

    def test_distribution_normalized(self):
        rng = np.random.default_rng(0)
        q = rng.random((6, 6))
        q = 0.9 * q / q.sum(axis=1, keepdims=True)
        result = quasi_stationary(q)
        assert result.distribution.sum() == pytest.approx(1.0)
        assert np.all(result.distribution >= 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            quasi_stationary(np.ones((2, 3)))
        with pytest.raises(ValueError, match="substochastic"):
            quasi_stationary(np.array([[0.8, 0.8], [0.1, 0.1]]))


class TestMinorityWell:
    def test_escape_rate_matches_exact_hitting_time(self):
        """Two routes to the well depth agree to many digits.

        The quasi-stationary escape time ``1/(1 - lambda_1)`` must equal the
        exact expected hitting time of the escape threshold from deep inside
        the well (the chain equilibrates to the QSD long before escaping).
        """
        n, z = 40, 1
        protocol = minority(3)
        chain = count_chain(protocol, n, z)
        threshold = int(0.875 * n)  # the certificate's a3
        well_states = np.arange(1, threshold)
        restricted = chain.transition[np.ix_(well_states, well_states)]
        qsd = quasi_stationary(restricted)

        escape_times = chain.expected_hitting_times(list(range(threshold, n + 1)))
        from_well = float(escape_times[n // 2])
        assert from_well == pytest.approx(qsd.mean_escape_time, rel=1e-3)

        # Escaping the well once is NOT converging: the adverse drift above
        # the threshold throws the chain back, so full consensus takes many
        # escape attempts — visible as orders of magnitude between the two.
        consensus_times = chain.expected_hitting_times([n])
        assert consensus_times[n // 2] > 100 * from_well

    def test_well_deepens_exponentially(self):
        rates = []
        for n in (24, 32, 40):
            chain = count_chain(minority(3), n, 1)
            threshold = int(0.875 * n)
            well_states = np.arange(1, threshold)
            restricted = chain.transition[np.ix_(well_states, well_states)]
            rates.append(quasi_stationary(restricted).escape_rate)
        # Escape rate shrinks by a big factor per +8 agents: exp(Omega(n)).
        assert rates[0] / rates[1] > 5
        assert rates[1] / rates[2] > 5

    def test_qsd_concentrates_at_the_attracting_fixed_point(self):
        n = 48
        chain = count_chain(minority(3), n, 1)
        well_states = np.arange(1, int(0.875 * n))
        restricted = chain.transition[np.ix_(well_states, well_states)]
        qsd = quasi_stationary(restricted)
        mode = well_states[int(np.argmax(qsd.distribution))]
        assert abs(mode / n - 0.5) < 0.1  # phi's attracting fixed point
