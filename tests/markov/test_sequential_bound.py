"""Tests for the exact sequential worst case."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.birth_death import sequential_birth_death_chain
from repro.markov.sequential_bound import sequential_worst_case
from repro.protocols import minority, two_choices, voter


class TestLadderVectorization:
    def test_all_starts_match_single_start(self):
        chain = sequential_birth_death_chain(voter(1), 40, 1)
        all_times = chain.expected_times_to_top()
        for x0 in (1, 7, 20, 39, 40):
            assert all_times[x0] == pytest.approx(
                chain.expected_time_to_top(x0), rel=1e-12
            )

    def test_bottom_mirror(self):
        chain = sequential_birth_death_chain(voter(1), 30, 0)
        all_times = chain.expected_times_to_bottom()
        for x0 in (0, 5, 15, 29):
            assert all_times[x0] == pytest.approx(
                chain.expected_time_to_bottom(x0), rel=1e-12
            )


class TestWorstCase:
    def test_voter_floor_constant(self):
        """[14]'s Omega(n), exactly: worst E[tau]/n is bounded below and
        essentially constant across sizes for the Voter."""
        statistics = [
            sequential_worst_case(voter(1), n).rounds_per_n for n in (32, 64, 128, 256)
        ]
        assert min(statistics) > 1.0
        assert max(statistics) / min(statistics) < 1.5

    def test_voter_worst_start_is_a_wrong_consensus(self):
        worst = sequential_worst_case(voter(1), 64)
        # By symmetry either source opinion; the start is the opposite end.
        if worst.z == 1:
            assert worst.x0 == 1
        else:
            assert worst.x0 == 63

    def test_two_choices_sequential_well(self):
        """Majority-like rules have exp-deep wrong-majority basins even
        sequentially — far above the Voter's linear floor."""
        worst = sequential_worst_case(two_choices(), 128)
        assert worst.rounds_per_n > 1e6

    def test_minority_sequential_well(self):
        worst = sequential_worst_case(minority(3), 64)
        assert worst.rounds_per_n > 1e6

    def test_prop3_violator_rejected(self):
        from repro.core.protocol import Protocol

        bad = Protocol(ell=1, g0=[0.1, 1.0], g1=[0.0, 1.0])
        with pytest.raises(ValueError, match="Proposition 3"):
            sequential_worst_case(bad, 16)
