"""Tests for spectral analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.chain import FiniteMarkovChain
from repro.markov.spectral import (
    mixing_time,
    spectral_summary,
    total_variation_distance,
)


def two_state(a: float, b: float) -> FiniteMarkovChain:
    return FiniteMarkovChain(np.array([[1 - a, a], [b, 1 - b]]))


class TestSpectralSummary:
    def test_two_state_gap_closed_form(self):
        # Eigenvalues of the 2-state chain: 1 and 1 - a - b.
        chain = two_state(0.3, 0.2)
        summary = spectral_summary(chain)
        assert summary.spectral_gap == pytest.approx(0.5, abs=1e-10)
        assert summary.relaxation_time == pytest.approx(2.0, abs=1e-9)

    def test_identity_chain_has_zero_gap(self):
        summary = spectral_summary(FiniteMarkovChain(np.eye(3)))
        assert summary.spectral_gap == 0.0
        assert summary.relaxation_time == float("inf")

    def test_eigenvalues_sorted_with_top_one(self):
        chain = two_state(0.4, 0.1)
        summary = spectral_summary(chain)
        assert summary.eigenvalues[0] == pytest.approx(1.0, abs=1e-10)
        assert np.all(np.diff(summary.eigenvalues) <= 1e-12)


class TestTotalVariation:
    def test_basic_values(self):
        assert total_variation_distance([1, 0], [0, 1]) == 1.0
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == 0.0
        assert total_variation_distance([0.75, 0.25], [0.25, 0.75]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance([1.0], [0.5, 0.5])


class TestMixingTime:
    def test_two_state_mixing_matches_gap(self):
        chain = two_state(0.3, 0.2)
        t_mix = mixing_time(chain, threshold=0.25)
        # TV from the worst start decays like (1 - a - b)^t; need 0.5^t * tv0
        # below 0.25 starting from tv0 = max(pi) distance.
        assert 1 <= t_mix <= 5

    def test_slower_chain_mixes_slower(self):
        fast = mixing_time(two_state(0.45, 0.45))
        slow = mixing_time(two_state(0.02, 0.02))
        assert slow > fast

    def test_reducible_chain_rejected(self):
        with pytest.raises(ValueError, match="reducible"):
            mixing_time(FiniteMarkovChain(np.eye(2)))

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            mixing_time(two_state(0.3, 0.3), threshold=0.0)

    def test_count_chain_with_noise_is_ergodic(self):
        """A noisy count chain has a unique stationary law and finite mixing."""
        from repro.dynamics.noise import noisy_response_probabilities
        from repro.protocols import voter
        from scipy.stats import binom

        # Build the noisy voter chain explicitly for a small population.
        n, z, delta = 12, 1, 0.1
        protocol = voter(1)
        matrix = np.zeros((n + 1, n + 1))
        for x in range(1, n + 1):
            p0, p1 = noisy_response_probabilities(protocol, x / n, delta)
            ones = binom.pmf(np.arange(x), x - 1, p1)
            zeros = binom.pmf(np.arange(n - x + 1), n - x, p0)
            row = np.convolve(ones, zeros)
            matrix[x, 1 : 1 + len(row)] = row
        matrix[0, 0] = 1.0  # unreachable padding state
        chain = FiniteMarkovChain(matrix)
        sub = FiniteMarkovChain(
            matrix[1:, 1:] / matrix[1:, 1:].sum(axis=1, keepdims=True)
        )
        t_mix = mixing_time(sub, threshold=0.25)
        assert t_mix < 1000
