"""Tests for the quorum (parametric logistic) protocol family."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bias import bias_value
from repro.core.lower_bound import lower_bound_certificate
from repro.core.roots import is_zero_bias
from repro.protocols import contrarian_quorum, majority, quorum


class TestQuorum:
    def test_boundary_pinned(self):
        protocol = quorum(5, center=2.5, sharpness=2.0)
        assert protocol.satisfies_boundary_conditions()

    def test_monotone_response(self):
        protocol = quorum(7, center=3.5, sharpness=1.0)
        assert np.all(np.diff(protocol.g0) >= 0)

    def test_sharp_limit_is_majority(self):
        soft = quorum(5, center=2.5, sharpness=50.0)
        hard = majority(5)
        np.testing.assert_allclose(soft.g0, hard.g0, atol=1e-6)

    def test_symmetric_center_gives_symmetric_protocol(self):
        protocol = quorum(6, center=3.0, sharpness=2.0)
        assert protocol.is_opinion_symmetric(tolerance=1e-9)

    def test_off_center_breaks_symmetry(self):
        protocol = quorum(6, center=2.0, sharpness=2.0)
        assert not protocol.is_opinion_symmetric(tolerance=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="ell"):
            quorum(1, 0.5, 1.0)
        with pytest.raises(ValueError, match="sharpness"):
            quorum(4, 2.0, 0.0)

    @given(
        st.integers(min_value=2, max_value=9),
        st.floats(min_value=0.5, max_value=8.0),
        st.floats(min_value=0.2, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_quorum_rule_gets_a_certificate(self, ell, center, sharpness):
        """The Theorem-12 pipeline handles the whole parameter space."""
        protocol = quorum(ell, center=min(center, ell - 0.5), sharpness=sharpness)
        if is_zero_bias(protocol):
            return
        certificate = lower_bound_certificate(protocol)
        assert certificate.a1 < certificate.a2 < certificate.a3

    def test_symmetric_quorum_is_majority_like(self):
        """A symmetric quorum drifts toward the local majority: Case 2."""
        protocol = quorum(5, center=2.5, sharpness=3.0)
        grid = np.linspace(0.55, 0.95, 9)
        assert np.all(np.asarray(bias_value(protocol, grid)) > 0)
        certificate = lower_bound_certificate(protocol)
        assert "case 2" in certificate.case


class TestContrarianQuorum:
    def test_boundary_pinned(self):
        protocol = contrarian_quorum(5, center=2.5, sharpness=2.0)
        assert protocol.satisfies_boundary_conditions()

    def test_interior_is_decreasing(self):
        protocol = contrarian_quorum(7, center=3.5, sharpness=1.5)
        interior = protocol.g0[1:-1]
        assert np.all(np.diff(interior) <= 0)

    def test_minority_like_bias(self):
        """Contrarian quorum is biased against a large majority: Case 1."""
        protocol = contrarian_quorum(5, center=2.5, sharpness=3.0)
        grid = np.linspace(0.6, 0.9, 7)
        assert np.all(np.asarray(bias_value(protocol, grid)) < 0)
        certificate = lower_bound_certificate(protocol)
        assert "case 1" in certificate.case
