"""Tests for random protocol sampling and the registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols import available_protocols, get_family, random_protocol, register
from repro.protocols.registry import _REGISTRY


class TestRandomProtocol:
    @given(st.integers(min_value=1, max_value=8), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_solving_flag_pins_boundary(self, ell, seed):
        protocol = random_protocol(ell, np.random.default_rng(seed), solving=True)
        assert protocol.satisfies_boundary_conditions()

    @given(st.integers(min_value=1, max_value=8), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_oblivious_flag(self, ell, seed):
        protocol = random_protocol(
            ell, np.random.default_rng(seed), solving=False, oblivious=True
        )
        assert protocol.is_oblivious()

    @given(st.integers(min_value=1, max_value=8), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_symmetric_flag(self, ell, seed):
        protocol = random_protocol(
            ell, np.random.default_rng(seed), solving=False, symmetric=True
        )
        assert protocol.is_opinion_symmetric()

    @given(st.integers(min_value=1, max_value=6), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_symmetric_and_oblivious_compose(self, ell, seed):
        protocol = random_protocol(
            ell, np.random.default_rng(seed), solving=True, oblivious=True, symmetric=True
        )
        assert protocol.is_oblivious()
        assert protocol.is_opinion_symmetric()
        assert protocol.satisfies_boundary_conditions()


class TestRegistry:
    def test_builtins_available(self):
        names = available_protocols()
        for expected in ("voter", "minority-3", "minority-sqrt", "majority-3"):
            assert expected in names

    def test_get_family_resolves(self):
        family = get_family("minority-3")
        assert family.at(100).ell == 3

    def test_sqrt_family_through_registry(self):
        family = get_family("minority-sqrt")
        assert family.at(1000).ell > family.at(100).ell

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="known protocols"):
            get_family("the-best-protocol")

    def test_register_custom(self):
        from repro.core.protocol import constant_family
        from repro.protocols import voter

        register("test-custom", lambda: constant_family(voter(2)))
        try:
            assert get_family("test-custom").at(10).ell == 2
        finally:
            _REGISTRY.pop("test-custom", None)
