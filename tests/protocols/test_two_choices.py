"""Tests for the 2-Choices dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bias import bias_value
from repro.core.lower_bound import lower_bound_certificate
from repro.core.mean_field import fixed_points
from repro.protocols import minority_ell3_bias, two_choices, two_choices_bias

GRID = np.linspace(0.0, 1.0, 41)


class TestTable:
    def test_table_values(self):
        protocol = two_choices()
        np.testing.assert_allclose(protocol.g0, [0.0, 0.0, 1.0])
        np.testing.assert_allclose(protocol.g1, [0.0, 1.0, 1.0])

    def test_non_oblivious(self):
        assert not two_choices().is_oblivious()

    def test_opinion_symmetric(self):
        assert two_choices().is_opinion_symmetric()

    def test_boundary_conditions(self):
        assert two_choices().satisfies_boundary_conditions()


class TestBias:
    def test_closed_form(self):
        np.testing.assert_allclose(
            bias_value(two_choices(), GRID), two_choices_bias(GRID), atol=1e-12
        )

    def test_is_negated_half_of_minority3(self):
        # F_2choices(p) = -(1/2) F_minority3(p).
        np.testing.assert_allclose(
            two_choices_bias(GRID), -0.5 * np.asarray(minority_ell3_bias(GRID)), atol=1e-12
        )

    def test_majority_like_fixed_points(self):
        points = {round(fp.location, 6): fp for fp in fixed_points(two_choices())}
        assert points[0.0].stability == "attracting"
        assert points[0.5].stability == "repelling"
        assert points[1.0].stability == "attracting"


class TestLowerBound:
    def test_case_two_certificate(self):
        certificate = lower_bound_certificate(two_choices())
        assert "case 2" in certificate.case
        assert certificate.z == 0
        assert certificate.interval[0] == pytest.approx(0.5, abs=1e-6)

    def test_stuck_on_wrong_majority(self, rng):
        """Like Majority: a wrong-majority start never recovers in time."""
        from repro.dynamics.config import Configuration
        from repro.dynamics.run import simulate

        config = Configuration(n=400, z=0, x0=300)  # wrong 3/4 majority of 1s
        result = simulate(two_choices(), config, 3000, rng)
        assert not result.converged

    def test_solves_plain_consensus_fast(self, rng):
        """From a correct majority it converges quickly — the point of the
        dynamics in the consensus literature."""
        from repro.dynamics.config import Configuration
        from repro.dynamics.run import simulate

        config = Configuration(n=400, z=1, x0=300)
        result = simulate(two_choices(), config, 3000, rng)
        assert result.converged
        assert result.rounds < 100
