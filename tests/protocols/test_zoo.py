"""Unit tests for the named protocols (Voter, Minority, Majority, blends)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bias import bias_value
from repro.protocols import (
    biased_voter,
    double_lobe,
    majority,
    minority,
    minority_ell3_bias,
    minority_sqrt_family,
    table_protocol,
    voter,
    voter_minority_blend,
)
from repro.protocols.minority import TIE_BREAK_RULES


class TestVoter:
    def test_table_is_k_over_ell(self):
        protocol = voter(4)
        np.testing.assert_allclose(protocol.g0, [0, 0.25, 0.5, 0.75, 1.0])

    def test_ell_independence_of_response(self):
        # A uniform element of a uniform sample is a uniform agent: the
        # marginal adopt probability equals p for every ell.
        grid = np.linspace(0, 1, 17)
        for ell in (1, 2, 6):
            p0, _ = voter(ell).response_probabilities(grid)
            np.testing.assert_allclose(p0, grid, atol=1e-12)


class TestMinority:
    def test_protocol2_table_odd(self):
        protocol = minority(5)
        np.testing.assert_allclose(protocol.g0, [0, 1, 1, 0, 0, 1])

    def test_protocol2_table_even_uniform_tie(self):
        protocol = minority(4)
        np.testing.assert_allclose(protocol.g0, [0, 1, 0.5, 0, 1])

    def test_unanimity_is_followed(self):
        for ell in (2, 3, 6):
            protocol = minority(ell)
            assert protocol.g0[0] == 0.0 and protocol.g0[ell] == 1.0

    def test_tie_break_variants(self):
        stay = minority(4, tie_break="stay")
        assert stay.g0[2] == 0.0 and stay.g1[2] == 1.0
        adopt = minority(4, tie_break="adopt-one")
        assert adopt.g0[2] == 1.0 and adopt.g1[2] == 1.0

    def test_unknown_tie_break_rejected(self):
        with pytest.raises(ValueError, match="tie_break"):
            minority(4, tie_break="flip-a-table")

    def test_tie_break_irrelevant_for_odd_ell(self):
        for rule in TIE_BREAK_RULES:
            np.testing.assert_allclose(minority(3, rule).g0, minority(3).g0)

    def test_closed_form_bias_sign_structure(self):
        grid = np.linspace(0.01, 0.49, 10)
        assert np.all(minority_ell3_bias(grid) > 0)
        assert np.all(minority_ell3_bias(1 - grid) < 0)

    def test_sqrt_family_sample_size_grows(self):
        family = minority_sqrt_family()
        assert family.at(100).ell < family.at(10_000).ell
        assert family.at(10_000).ell % 2 == 1

    def test_sqrt_family_rejects_bad_constant(self):
        with pytest.raises(ValueError):
            minority_sqrt_family(constant=0.0)


class TestMajority:
    def test_table(self):
        np.testing.assert_allclose(majority(3).g0, [0, 0, 1, 1])
        np.testing.assert_allclose(majority(4).g0, [0, 0, 0.5, 1, 1])

    def test_satisfies_boundary_conditions(self):
        # Proposition 3 is necessary, not sufficient: Majority passes it yet
        # fails the problem (demonstrated in the integration tests).
        assert majority(5).satisfies_boundary_conditions()

    def test_majority_bias_opposes_minority(self):
        grid = np.linspace(0.05, 0.45, 9)
        assert np.all(bias_value(majority(3), grid) < 0)
        assert np.all(bias_value(minority(3), grid) > 0)


class TestBlends:
    def test_blend_bias_is_linear_in_weight(self):
        grid = np.linspace(0, 1, 21)
        full = bias_value(minority(3), grid)
        for weight in (0.25, 0.5, 0.75):
            blended = bias_value(voter_minority_blend(3, weight), grid)
            np.testing.assert_allclose(blended, weight * np.asarray(full), atol=1e-12)

    def test_blend_weight_validated(self):
        with pytest.raises(ValueError):
            voter_minority_blend(3, 1.5)

    def test_biased_voter_boundary_k_rejected(self):
        with pytest.raises(ValueError, match="interior"):
            biased_voter(3, 0, 0.1)
        with pytest.raises(ValueError, match="interior"):
            biased_voter(3, 3, 0.1)

    def test_biased_voter_overflow_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            biased_voter(2, 1, 0.6)  # 1/2 + 0.6 > 1

    def test_double_lobe_validates_arguments(self):
        with pytest.raises(ValueError):
            double_lobe(0.0)
        with pytest.raises(ValueError):
            double_lobe(0.5, strength=0.0)

    @given(st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_double_lobe_bias_closed_form(self, root):
        protocol = double_lobe(root, strength=0.4)
        grid = np.linspace(0, 1, 31)
        d0, d1 = 0.4 * root, -0.4 * (1 - root)
        expected = 2 * grid * (1 - grid) * ((1 - grid) * d0 + grid * d1)
        np.testing.assert_allclose(bias_value(protocol, grid), expected, atol=1e-12)


class TestTableProtocols:
    def test_table_protocol_infers_ell(self):
        protocol = table_protocol([0.0, 0.3, 1.0])
        assert protocol.ell == 2
        assert protocol.is_oblivious()

    def test_table_protocol_distinct_g1(self):
        protocol = table_protocol([0.0, 1.0], [0.5, 1.0])
        assert not protocol.is_oblivious()

    def test_short_table_rejected(self):
        with pytest.raises(ValueError):
            table_protocol([0.5])
