"""WAL edge cases for the journaled job store.

Mirrors the corrupt-handling philosophy of ``tests/analysis/test_index.py``
— but where the trace index may silently rebuild (it is a cache), the job
journal is the only copy of job state, so torn tails are *salvaged*,
duplicates are *idempotent*, and version skew is *refused*.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import zlib

import pytest

from repro.execution.shutdown import EXIT_FAULT_INJECTED
from repro.service.jobstore import (
    JOBSTORE_SCHEMA_VERSION,
    JOURNAL_MAGIC,
    Job,
    JobStore,
    JobStoreError,
    frame_record,
    iter_journal_records,
    load_jobs,
)

SPEC = {"kind": "ensemble", "protocol": "voter", "n": 30, "replicas": 4,
        "max_rounds": 100, "seed": 1}


def make_store(root, **kwargs) -> JobStore:
    return JobStore(root / "svc", **kwargs)


class TestBasics:
    def test_submit_assigns_sequential_ids(self, tmp_path):
        store = make_store(tmp_path)
        first = store.submit(SPEC)
        second = store.submit(SPEC)
        assert (first.id, second.id) == ("J000001", "J000002")
        assert first.state == "queued"
        assert store.counts()["queued"] == 2

    def test_transition_updates_state_and_fields(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        updated = store.transition(job.id, "running", attempt=1, worker_pid=42)
        assert updated.state == "running"
        assert updated.attempt == 1
        assert updated.worker_pid == 42

    def test_illegal_transition_raises_on_the_live_path(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        store.transition(job.id, "cancelled")
        with pytest.raises(JobStoreError, match="illegal transition"):
            store.transition(job.id, "running")

    def test_unknown_job_and_field_are_refused(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(JobStoreError, match="unknown job"):
            store.transition("J999999", "running")
        job = store.submit(SPEC)
        with pytest.raises(JobStoreError, match="unknown job fields"):
            store.transition(job.id, "running", nonsense=1)

    def test_active_self_loop_updates_fields(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        store.transition(job.id, "running", attempt=1)
        updated = store.transition(job.id, "running", worker_pid=77)
        assert updated.state == "running"
        assert updated.worker_pid == 77

    def test_job_roundtrips_through_dict(self):
        job = Job(id="J000001", spec=SPEC, state="failed", exit_code=5,
                  exit_name="EXIT_INTERRUPTED", backoff_s=0.25)
        clone = Job.from_dict(job.to_dict())
        assert clone == job
        assert Job.from_dict({**job.to_dict(), "future_field": 1}) == job


class TestReplay:
    def test_reopen_replays_the_journal(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        store.transition(job.id, "running", attempt=1)
        store.transition(job.id, "done", result={"ok": True})
        store.close()

        reopened = make_store(tmp_path)
        replayed = reopened.get(job.id)
        assert replayed.state == "done"
        assert replayed.result == {"ok": True}
        assert reopened.salvaged_bytes == 0

    def test_torn_final_record_is_salvaged_and_truncated(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        store.transition(job.id, "running", attempt=1)
        store.close()
        journal = store.journal_path
        intact = journal.stat().st_size
        frame = frame_record(b'{"schema": 1, "seq": 3}')
        with open(journal, "ab") as handle:
            handle.write(frame[: len(frame) // 2])

        reopened = make_store(tmp_path)
        assert reopened.salvaged_bytes == len(frame) // 2
        assert reopened.get(job.id).state == "running"
        assert journal.stat().st_size == intact  # torn tail truncated away
        # The journal accepts appends again after the salvage.
        reopened.transition(job.id, "done")
        reopened.close()
        assert make_store(tmp_path).get(job.id).state == "done"

    def test_duplicate_transition_replay_is_idempotent(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        store.transition(job.id, "running", attempt=1)
        store.close()
        journal = store.journal_path
        data = journal.read_bytes()
        # Duplicate the entire journal: every record replays twice.
        journal.write_bytes(data + data)

        reopened = make_store(tmp_path)
        assert reopened.get(job.id).state == "running"
        assert reopened.get(job.id).attempt == 1
        assert len(reopened.jobs()) == 1
        assert reopened.replay_skipped >= 2
        # The watermark still advances past the duplicates.
        reopened.transition(job.id, "done")
        reopened.close()
        assert make_store(tmp_path).get(job.id).state == "done"

    def test_garbage_mid_file_ends_the_walk_keeping_the_prefix(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        store.close()
        with open(store.journal_path, "ab") as handle:
            handle.write(b"\x00garbage-that-is-not-a-frame\xff" * 4)

        reopened = make_store(tmp_path)
        assert reopened.get(job.id).state == "queued"
        assert reopened.salvaged_bytes > 0

    def test_corrupted_crc_ends_the_walk(self, tmp_path):
        store = make_store(tmp_path)
        store.submit(SPEC)
        second = store.submit(SPEC)
        store.close()
        data = bytearray(store.journal_path.read_bytes())
        data[-6] ^= 0xFF  # flip a bit inside the final record's CRC/length
        store.journal_path.write_bytes(bytes(data))

        reopened = make_store(tmp_path)
        assert len(reopened.jobs()) == 1  # second submit salvaged away
        assert second.id not in {j.id for j in reopened.jobs()}


class TestSnapshotCompaction:
    def test_snapshot_plus_journal_replay_equivalence(self, tmp_path):
        plain = JobStore(tmp_path / "plain")
        compacted = JobStore(tmp_path / "compacted")
        for store in (plain, compacted):
            job = store.submit(SPEC, at=1.0)
            store.transition(job.id, "running", attempt=1, at=2.0)
        compacted.compact()
        for store in (plain, compacted):
            job2 = store.submit({**SPEC, "seed": 2}, at=3.0)
            store.transition(job2.id, "cancelled", at=4.0)
            store.close()

        a = JobStore(tmp_path / "plain", readonly=True)
        b = JobStore(tmp_path / "compacted", readonly=True)
        assert [j.to_dict() for j in a.jobs()] == [j.to_dict() for j in b.jobs()]
        assert a.seq == b.seq
        assert b.snapshot_path.exists() and not a.snapshot_path.exists()

    def test_compaction_resets_the_journal(self, tmp_path):
        store = make_store(tmp_path)
        for _ in range(5):
            store.submit(SPEC)
        before = store.journal_path.stat().st_size
        store.compact()
        assert store.journal_path.stat().st_size == 0
        assert before > 0
        # Post-compaction appends land in the fresh journal and replay.
        job = store.submit(SPEC)
        store.close()
        assert make_store(tmp_path).get(job.id).state == "queued"

    def test_auto_compaction_by_journal_size(self, tmp_path):
        store = JobStore(tmp_path / "svc", compact_bytes=512)
        for _ in range(20):
            store.submit(SPEC)
        assert store.snapshot_path.exists()
        assert store.journal_path.stat().st_size < 512
        assert len(make_store(tmp_path).jobs()) == 20

    def test_stale_journal_records_skipped_after_snapshot(self, tmp_path):
        """The mid-compact crash shape: snapshot new, journal old."""
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        store.transition(job.id, "running", attempt=1)
        journal_before = store.journal_path.read_bytes()
        store.compact()
        # Simulate dying between snapshot publish and journal reset by
        # restoring the pre-compaction journal next to the new snapshot.
        store.close()
        store.journal_path.write_bytes(journal_before)

        reopened = make_store(tmp_path)
        assert len(reopened.jobs()) == 1
        assert reopened.get(job.id).state == "running"
        assert reopened.replay_skipped == len(list(
            iter_journal_records(journal_before)
        ))


class TestVersionSkewAndCorruption:
    def test_version_skew_journal_refuses_with_clear_error(self, tmp_path):
        root = tmp_path / "svc"
        root.mkdir()
        record = {"schema": JOBSTORE_SCHEMA_VERSION + 1, "seq": 1,
                  "job": "J000001", "to": "queued", "at": 0.0, "fields": {}}
        (root / "jobs.journal").write_bytes(
            frame_record(json.dumps(record).encode())
        )
        with pytest.raises(JobStoreError, match="schema v2 is not supported"):
            JobStore(root)

    def test_version_skew_snapshot_refuses(self, tmp_path):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "jobs.snapshot.json").write_text(json.dumps(
            {"schema": JOBSTORE_SCHEMA_VERSION + 1, "seq": 0, "jobs": {}}
        ))
        with pytest.raises(JobStoreError, match="not supported"):
            JobStore(root)

    def test_corrupt_snapshot_refuses(self, tmp_path):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "jobs.snapshot.json").write_text("{never finished")
        with pytest.raises(JobStoreError, match="corrupt"):
            JobStore(root)

    def test_foreign_file_as_journal_refuses(self, tmp_path):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "jobs.journal").write_bytes(b"PK\x03\x04 definitely a zip")
        with pytest.raises(JobStoreError, match="bad magic"):
            JobStore(root)


class TestReadonlyView:
    def test_load_jobs_does_not_truncate_torn_tails(self, tmp_path):
        store = make_store(tmp_path)
        job = store.submit(SPEC)
        store.close()
        with open(store.journal_path, "ab") as handle:
            handle.write(b"torn!")
        size_before = store.journal_path.stat().st_size

        view = load_jobs(store.root)
        assert view.get(job.id).state == "queued"
        assert view.salvaged_bytes == 5
        assert store.journal_path.stat().st_size == size_before

    def test_load_jobs_refuses_mutation(self, tmp_path):
        store = make_store(tmp_path)
        store.submit(SPEC)
        store.close()
        view = load_jobs(store.root)
        with pytest.raises(JobStoreError, match="read-only"):
            view.submit(SPEC)


class TestMidCommitCrashpoint:
    def test_fault_tears_the_commit_and_restart_salvages(self, tmp_path):
        """REPRO_FAULT=jobstore:mid_commit:2 dies mid-append of commit 2."""
        root = tmp_path / "svc"
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        script = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.service.jobstore import JobStore\n"
            "store = JobStore(%r)\n"
            "store.submit({'kind': 'ensemble', 'seed': 1})\n"
            "store.submit({'kind': 'ensemble', 'seed': 2})\n"
            "raise SystemExit('unreachable: fault must have tripped')\n"
        ) % (src, str(root))
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "REPRO_FAULT": "jobstore:mid_commit:2"},
            capture_output=True, text=True,
        )
        assert completed.returncode == EXIT_FAULT_INJECTED, completed.stderr

        reopened = JobStore(root)
        assert reopened.salvaged_bytes > 0  # half a frame was on disk
        jobs = reopened.jobs()
        assert [j.id for j in jobs] == ["J000001"]  # commit 1 survived
        # The store keeps working: the salvaged id space is reusable.
        second = reopened.submit({"kind": "ensemble", "seed": 2})
        assert second.id == "J000002"
