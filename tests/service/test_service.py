"""Service loop, recovery, retry taxonomy, and the HTTP API."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.execution.backoff import backoff_delay_s
from repro.execution.shutdown import (
    EXIT_ERROR,
    EXIT_INTERRUPTED,
    EXIT_NOT_CONVERGED,
)
from repro.service import (
    Service,
    ServiceConfig,
    ServiceServer,
    SpecError,
    exit_taxonomy,
    validate_spec,
)
from repro.service.jobstore import JobStoreError

FAST = {"kind": "ensemble", "protocol": "voter", "n": 30, "replicas": 4,
        "max_rounds": 3000, "seed": 7}


def quick_config(**overrides) -> ServiceConfig:
    defaults = dict(workers=2, poll_s=0.01, backoff_base_s=0.01,
                    backoff_cap_s=0.05)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def service(tmp_path):
    svc = Service(tmp_path / "svc", quick_config())
    yield svc
    svc.shutdown()


class TestValidateSpec:
    def test_defaults_applied(self):
        spec = validate_spec({})
        assert spec["kind"] == "ensemble"
        assert spec["protocol"] == "minority-3"
        assert spec["replicas"] == 10

    def test_bad_kind_and_trace_rejected(self):
        with pytest.raises(SpecError, match="unknown job kind"):
            validate_spec({"kind": "mine-bitcoin"})
        with pytest.raises(SpecError, match="trace must be"):
            validate_spec({"trace": "parquet"})

    def test_run_is_single_replica(self):
        with pytest.raises(SpecError, match="single replica"):
            validate_spec({"kind": "run", "replicas": 3})

    def test_sweep_requires_param_and_values(self):
        with pytest.raises(SpecError, match="requires a 'sweep' object"):
            validate_spec({"kind": "sweep"})
        with pytest.raises(SpecError, match="sweep param"):
            validate_spec({"kind": "sweep", "sweep": {"param": "zeal", "values": [1]}})
        with pytest.raises(SpecError, match="non-empty list"):
            validate_spec({"kind": "sweep", "sweep": {"param": "n", "values": []}})

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(SpecError, match="positive"):
            validate_spec({"n": 0})


class TestExitTaxonomy:
    def test_stalled_and_signals_map_to_interrupted(self):
        assert exit_taxonomy(None, stalled=True)[0] == EXIT_INTERRUPTED
        assert exit_taxonomy(-9) == (EXIT_INTERRUPTED, "EXIT_INTERRUPTED")

    def test_known_codes_keep_their_name(self):
        assert exit_taxonomy(EXIT_NOT_CONVERGED) == (
            EXIT_NOT_CONVERGED, "EXIT_NOT_CONVERGED"
        )

    def test_unknown_codes_fold_to_error(self):
        assert exit_taxonomy(177) == (EXIT_ERROR, "EXIT_ERROR")


class TestLifecycle:
    def test_submit_drain_done_with_result(self, service):
        job = service.submit(FAST)
        assert service.drain(timeout_s=60)
        finished = service.store.get(job.id)
        assert finished.state == "done"
        assert finished.attempt == 1
        stats = finished.result["stats"]
        assert stats["trials"] == 4
        assert finished.result["resumed"] is False

    def test_failing_job_lands_in_failed_with_taxonomy(self, service):
        # validate_spec accepts the name; the worker discovers it is
        # unknown and exits EXIT_ERROR every attempt.
        job = service.submit(
            {**FAST, "protocol": "no-such-protocol"}, max_retries=1
        )
        assert service.drain(timeout_s=60)
        failed = service.store.get(job.id)
        assert failed.state == "failed"
        assert failed.retries == 2
        assert failed.exit_code == EXIT_ERROR
        assert failed.exit_name == "EXIT_ERROR"

    def test_requeue_backoff_is_seeded_and_journaled(self, service):
        job = service.submit(
            {**FAST, "protocol": "no-such-protocol", "seed": 11}, max_retries=2
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            service.tick()
            current = service.store.get(job.id)
            if current.retries == 1 and current.state == "queued":
                break
            time.sleep(0.01)
        requeued = service.store.get(job.id)
        expected = backoff_delay_s(
            1,
            base_s=service.config.backoff_base_s,
            cap_s=service.config.backoff_cap_s,
            key=f"11:{job.id}",
        )
        assert requeued.backoff_s == expected
        assert requeued.not_before > 0

    def test_cancel_queued_job(self, tmp_path):
        svc = Service(tmp_path / "svc", quick_config(workers=0))
        try:
            job = svc.submit(FAST)
            cancelled = svc.cancel(job.id)
            assert cancelled.state == "cancelled"
            with pytest.raises(JobStoreError, match="cannot cancel"):
                svc.cancel(job.id)
        finally:
            svc.shutdown()

    def test_stale_heartbeat_worker_is_killed_and_retried_to_failed(self, tmp_path):
        svc = Service(
            tmp_path / "svc",
            quick_config(
                workers=1, stale_after_s=0.2, dispatch_grace_s=0.5,
            ),
        )
        try:
            # A job big enough to outlive the watchdog, with a heartbeat
            # interval so long the first write is also the last.
            job = svc.submit(
                {"kind": "ensemble", "protocol": "voter", "n": 5000,
                 "replicas": 4000, "max_rounds": 10_000_000, "seed": 3,
                 "heartbeat_every_s": 3600.0, "checkpoint_every": 10**9},
                max_retries=0,
            )
            assert svc.drain(timeout_s=120)
            failed = svc.store.get(job.id)
            assert failed.state == "failed"
            assert failed.exit_code == EXIT_INTERRUPTED
            assert failed.exit_name == "EXIT_INTERRUPTED"
            assert "stale" in failed.error
        finally:
            svc.shutdown()


class TestRecovery:
    def test_orphaned_running_job_is_requeued_on_restart(self, tmp_path):
        svc = Service(tmp_path / "svc", quick_config(workers=0))
        job = svc.submit(FAST)
        svc.store.transition(job.id, "running", attempt=1)
        svc.store.close()

        recovered = Service(tmp_path / "svc", quick_config(workers=0))
        try:
            after = recovered.store.get(job.id)
            assert after.state == "queued"
            assert after.retries == 1
            assert "orphaned" in after.error
        finally:
            recovered.shutdown()

    def test_orphan_with_published_result_is_adopted_as_done(self, tmp_path):
        svc = Service(tmp_path / "svc", quick_config(workers=0))
        job = svc.submit(FAST)
        svc.store.transition(job.id, "running", attempt=1)
        jobdir = svc.store.job_dir(job.id)
        jobdir.mkdir(parents=True, exist_ok=True)
        (jobdir / "result.json").write_text(
            json.dumps({"kind": "ensemble", "attempt": 1, "stats": {"trials": 4}})
        )
        svc.store.close()

        recovered = Service(tmp_path / "svc", quick_config(workers=0))
        try:
            after = recovered.store.get(job.id)
            assert after.state == "done"
            assert after.result["stats"] == {"trials": 4}
        finally:
            recovered.shutdown()

    def test_stale_attempt_result_is_not_adopted(self, tmp_path):
        svc = Service(tmp_path / "svc", quick_config(workers=0))
        job = svc.submit(FAST)
        svc.store.transition(job.id, "running", attempt=2)
        jobdir = svc.store.job_dir(job.id)
        jobdir.mkdir(parents=True, exist_ok=True)
        (jobdir / "result.json").write_text(
            json.dumps({"kind": "ensemble", "attempt": 1, "stats": {}})
        )
        svc.store.close()

        recovered = Service(tmp_path / "svc", quick_config(workers=0))
        try:
            assert recovered.store.get(job.id).state == "queued"
        finally:
            recovered.shutdown()

    def test_interrupted_job_resumes_from_checkpoint_bit_identically(self, tmp_path):
        """The core chaos guarantee, in-process: run, orphan, rerun, compare."""
        baseline = Service(tmp_path / "baseline", quick_config(workers=1))
        ref = baseline.submit({**FAST, "checkpoint_every": 1})
        assert baseline.drain(timeout_s=60)
        expected = baseline.store.get(ref.id).result["stats"]
        baseline.shutdown()

        svc = Service(tmp_path / "svc", quick_config(workers=1))
        job = svc.submit({**FAST, "checkpoint_every": 1})
        # Let the worker make progress, then kill it mid-flight the hard
        # way (no reap), leaving checkpoint + running state behind.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            svc.tick()
            if (svc.store.job_dir(job.id) / "job.ckpt").exists():
                break
            time.sleep(0.005)
        process = svc._children.get(job.id)
        if process is not None:
            process.kill()
            process.join(timeout=5.0)
        svc.store.close()  # abandon without reaping: a crash, effectively

        recovered = Service(tmp_path / "svc", quick_config(workers=1))
        try:
            assert recovered.drain(timeout_s=60)
            final = recovered.store.get(job.id)
            assert final.state == "done"
            if final.result["attempt"] > 1:
                assert final.result["resumed"] is True
            assert final.result["stats"] == expected
        finally:
            recovered.shutdown()


class TestShutdown:
    def test_shutdown_requeues_without_consuming_a_retry(self, tmp_path):
        svc = Service(tmp_path / "svc", quick_config(workers=1))
        job = svc.submit(
            {"kind": "ensemble", "protocol": "voter", "n": 5000,
             "replicas": 4000, "max_rounds": 10_000_000, "seed": 3,
             "checkpoint_every": 10**9}
        )
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and job.id not in svc._children:
            svc.tick()
            time.sleep(0.005)
        svc.shutdown()

        after = Service(tmp_path / "svc", quick_config(workers=0))
        try:
            parked = after.store.get(job.id)
            assert parked.retries <= 1  # shutdown itself burned nothing
            assert parked.state == "queued"
            assert "shutdown" in (parked.error or "") or "orphaned" in (
                parked.error or ""
            )
        finally:
            after.shutdown()


class TestHTTPAPI:
    @pytest.fixture
    def api(self, service):
        server = ServiceServer(service)
        server.start()
        yield service, server.url
        server.stop()

    @staticmethod
    def get(url: str):
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read().decode())

    @staticmethod
    def post(url: str, payload=None):
        body = json.dumps(payload or {}).encode()
        request = urllib.request.Request(url, data=body, method="POST")
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read().decode())

    def test_submit_status_result_roundtrip(self, api):
        service, url = api
        status, created = self.post(f"{url}/jobs", {**FAST, "max_retries": 1})
        assert status == 201
        job_id = created["job"]["id"]
        assert created["job"]["state"] == "queued"
        assert service.drain(timeout_s=60)
        status, doc = self.get(f"{url}/jobs/{job_id}")
        assert doc["state"] == "done"
        status, result = self.get(f"{url}/jobs/{job_id}/result")
        assert result["result"]["stats"]["trials"] == 4
        status, listing = self.get(f"{url}/jobs")
        assert listing["counts"]["done"] == 1

    def test_long_poll_returns_terminal_state(self, api):
        service, url = api
        _, created = self.post(f"{url}/jobs", dict(FAST))
        job_id = created["job"]["id"]
        import threading

        poller = {}

        def poll():
            poller["doc"] = self.get(f"{url}/jobs/{job_id}?wait_s=30")[1]

        thread = threading.Thread(target=poll)
        thread.start()
        assert service.drain(timeout_s=60)
        thread.join(timeout=60)
        assert poller["doc"]["state"] == "done"

    def test_bad_submission_is_a_400(self, api):
        _, url = api
        with pytest.raises(urllib.error.HTTPError) as err:
            self.post(f"{url}/jobs", {"kind": "nope"})
        assert err.value.code == 400

    def test_unknown_job_is_a_404(self, api):
        _, url = api
        with pytest.raises(urllib.error.HTTPError) as err:
            self.get(f"{url}/jobs/J999999")
        assert err.value.code == 404

    def test_trace_endpoint_requires_tracing(self, api):
        service, url = api
        _, created = self.post(f"{url}/jobs", dict(FAST))
        with pytest.raises(urllib.error.HTTPError) as err:
            self.get(f"{url}/jobs/{created['job']['id']}/trace")
        assert err.value.code == 404

    def test_trace_tail_of_a_traced_job(self, api):
        service, url = api
        _, created = self.post(f"{url}/jobs", {**FAST, "trace": "columnar"})
        assert service.drain(timeout_s=60)
        _, tail = self.get(f"{url}/jobs/{created['job']['id']}/trace")
        assert tail["round"] is not None
        assert tail["round"]["kind"] == "round"

    def test_metrics_exposition_is_valid(self, api):
        service, url = api
        from repro.telemetry.prometheus import validate_exposition

        self.post(f"{url}/jobs", dict(FAST))
        with urllib.request.urlopen(f"{url}/metrics") as response:
            text = response.read().decode()
            content_type = response.headers["Content-Type"]
        assert "version=0.0.4" in content_type
        validate_exposition(text)
        assert "repro_service_jobs" in text

    def test_healthz_and_compact(self, api):
        service, url = api
        _, health = self.get(f"{url}/healthz")
        assert health["ok"] is True
        _, compacted = self.post(f"{url}/admin/compact")
        assert compacted["journal_bytes"] == 0

    def test_cancel_endpoint(self, tmp_path):
        svc = Service(tmp_path / "svc", quick_config(workers=0))
        server = ServiceServer(svc)
        server.start()
        try:
            _, created = self.post(f"{server.url}/jobs", dict(FAST))
            _, cancelled = self.post(
                f"{server.url}/jobs/{created['job']['id']}/cancel"
            )
            assert cancelled["job"]["state"] == "cancelled"
        finally:
            server.stop()
            svc.shutdown()
