"""Tests for the command-line interface."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main, resolve_protocol
from repro.execution import (
    EXIT_BENCH_TIMEOUT,
    EXIT_ERROR,
    EXIT_INVALID_TRACE,
    EXIT_PERF_REGRESSION,
)


class TestResolve:
    def test_registry_name(self):
        protocol = resolve_protocol("minority-3", 100)
        assert protocol.ell == 3

    def test_n_dependent_family(self):
        small = resolve_protocol("minority-sqrt", 100)
        large = resolve_protocol("minority-sqrt", 10_000)
        assert small.ell < large.ell

    def test_table_literal(self):
        protocol = resolve_protocol("table:0,0.5,1", 100)
        assert protocol.ell == 2
        assert protocol.is_oblivious()

    def test_table_literal_with_g1(self):
        protocol = resolve_protocol("table:0,0.5,1;0,0.7,1", 100)
        assert not protocol.is_oblivious()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            resolve_protocol("nope", 100)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "voter" in out and "minority-3" in out

    def test_audit_minority(self, capsys):
        assert main(["audit", "minority-3", "--n", "1024"]) == 0
        out = capsys.readouterr().out
        assert "case 1" in out
        assert "witness" in out

    def test_audit_zero_bias(self, capsys):
        assert main(["audit", "voter", "--n", "512"]) == 0
        out = capsys.readouterr().out
        assert "Lemma-11" in out or "Lemma 11" in out

    def test_audit_violator_exits_nonzero(self, capsys):
        assert main(["audit", "table:0.3,1", "--n", "128"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out

    def test_run_converges(self, capsys):
        code = main(
            ["run", "voter", "--n", "200", "--rounds", "100000", "--seed", "3"]
        )
        assert code == 0
        assert "converged=True" in capsys.readouterr().out

    def test_run_censored_exit_code(self, capsys):
        code = main(["run", "minority-3", "--n", "500", "--rounds", "20"])
        assert code == 2

    def test_run_with_recording(self, capsys):
        main(["run", "voter", "--n", "100", "--rounds", "50000", "--record"])
        captured = capsys.readouterr()
        assert "count" in captured.err  # the ascii plot legend (stderr)
        assert "converged=" in captured.out  # result line stays on stdout

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "voter", "--sizes", "64,128", "--replicas", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "fit: tau ~" in out

    def test_landscape(self, capsys):
        assert main(["landscape", "minority-3", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "F(p)" in out
        assert "p," in out  # csv header

    def test_worst(self, capsys):
        assert main(["worst", "voter", "--n", "24"]) == 0
        out = capsys.readouterr().out
        assert "worst start x0=1" in out

    def test_worst_with_profile(self, capsys):
        assert main(["worst", "minority-3", "--n", "24", "--profile"]) == 0
        assert "log10" in capsys.readouterr().out

    def test_meanfield(self, capsys):
        assert main(["meanfield", "minority-3"]) == 0
        out = capsys.readouterr().out
        assert "attracting" in out and "repelling" in out

    def test_meanfield_zero_bias(self, capsys):
        assert main(["meanfield", "voter"]) == 0
        assert "identity" in capsys.readouterr().out

    def test_assemble(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "E1_x.txt").write_text("table one")
        (results / "E2_y.txt").write_text("table two")
        output = tmp_path / "REPORT.md"
        assert main(
            ["assemble", "--results-dir", str(results), "--output", str(output)]
        ) == 0
        text = output.read_text()
        assert "E1_x" in text and "table two" in text

    def test_assemble_missing_dir(self, tmp_path):
        assert main(
            ["assemble", "--results-dir", str(tmp_path / "nope"), "--output", "r.md"]
        ) == 1

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_thm2_voter" in out
        assert "bench_engine_throughput" in out


class TestReportCommand:
    @pytest.fixture()
    def results(self, tmp_path, capsys):
        directory = tmp_path / "results"
        directory.mkdir()
        main(
            ["run", "voter", "--n", "120", "--rounds", "50000", "--seed", "3",
             "--trace", str(directory / "run1.jsonl")]
        )
        (directory / "BENCH_E1_demo.json").write_text(
            '{"experiment": "E1_demo", "schema": 1, "wall_clock_s": 1.0,'
            ' "rounds": 100, "rounds_per_second": 100.0}\n'
        )
        capsys.readouterr()  # drop the run's own output
        return directory

    def test_report_renders_tables(self, results, capsys):
        assert main(["report", str(results)]) == 0
        captured = capsys.readouterr()
        assert "voter(ell=1)" in captured.out
        assert "E1_demo" in captured.out
        assert "new" in captured.out  # no baseline yet

    def test_report_json_is_parseable(self, results, capsys):
        import json

        assert main(["report", str(results), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["traces"][0]["protocol"] == "voter(ell=1)"
        assert report["benchmarks"][0]["verdict"] == "new"

    def test_report_strict_flags_regression(self, results, capsys):
        (results / "BASELINE.json").write_text(
            '{"schema": 1, "experiments": {"E1_demo":'
            ' {"wall_clock_s": 0.25, "samples": [0.25]}}}\n'
        )
        assert main(["report", str(results)]) == 0  # informational by default
        assert main(["report", str(results), "--strict"]) == EXIT_PERF_REGRESSION
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_report_missing_dir(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "no results directory" in captured.err


class TestTelemetryFlags:
    def test_trace_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.telemetry import validate_trace

        path = tmp_path / "run.jsonl"
        code = main(
            ["run", "voter", "--n", "100", "--rounds", "50000", "--seed", "3",
             "--trace", str(path)]
        )
        assert code == 0
        records = validate_trace(path)
        assert records[0]["runner"] == "simulate"
        assert records[0]["protocol"]["name"] == "voter(ell=1)"
        err = capsys.readouterr().err
        assert f"trace: wrote {len(records)} records to {path}" in err

    def test_metrics_prints_rounds_per_second(self, capsys):
        code = main(
            ["run", "voter", "--n", "100", "--rounds", "50000", "--seed", "3",
             "--metrics"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "telemetry: rounds=" in err
        assert "rounds/sec=" in err
        assert "telemetry: span simulate:" in err

    def test_metrics_go_to_stderr_not_stdout(self, capsys):
        main(
            ["run", "voter", "--n", "100", "--rounds", "50000", "--seed", "3",
             "--metrics"]
        )
        out = capsys.readouterr().out
        assert "telemetry:" not in out

    def test_metrics_and_trace_agree_with_result_line(self, tmp_path, capsys):
        from repro.telemetry import read_trace

        path = tmp_path / "run.jsonl"
        main(
            ["run", "voter", "--n", "100", "--rounds", "50000", "--seed", "3",
             "--metrics", "--trace", str(path)]
        )
        captured = capsys.readouterr()
        end = next(
            r for r in read_trace(path) if r.get("kind") == "run_end"
        )
        assert f"converged={end['converged']}" in captured.out
        assert f"telemetry: rounds={end['rounds_recorded']}" in captured.err


class TestSweepEdgeCases:
    def test_sweep_all_censored_skips_fit(self, capsys):
        # minority-3 with a tiny budget factor: every cell censors; the
        # command must render the table and skip the power-law fit.
        code = main(
            [
                "sweep", "minority-3", "--sizes", "128,256",
                "--replicas", "2", "--budget-factor", "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inf" in out
        assert "fit: tau ~" not in out

    def test_sweep_z_zero(self, capsys):
        assert main(
            ["sweep", "voter", "--sizes", "64,128", "--replicas", "2", "--z", "0"]
        ) == 0
        assert "median tau" in capsys.readouterr().out


class TestDurabilityCommands:
    """`run --checkpoint`, `resume`, `trace validate`, `bench --timeout`."""

    RUN_ARGS = ["run", "voter", "--n", "200", "--rounds", "100000", "--seed", "3"]

    def test_run_then_resume_replays_identical_result(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "run.ckpt")
        assert main(self.RUN_ARGS + ["--checkpoint", checkpoint,
                                     "--checkpoint-every", "25"]) == 0
        first = capsys.readouterr().out
        assert main(["resume", checkpoint]) == 0
        resumed = capsys.readouterr()
        # A complete checkpoint replays the stored outcome: the result
        # line on stdout is byte-identical to the original run's.
        assert resumed.out == first
        assert "replaying the stored result" in resumed.err

    def test_resume_missing_checkpoint(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "absent.ckpt")]) == EXIT_ERROR
        assert "no checkpoint" in capsys.readouterr().err

    def test_resume_refuses_library_checkpoints(self, tmp_path, capsys):
        from repro.dynamics.config import Configuration
        from repro.dynamics.rng import make_rng
        from repro.dynamics.run import simulate
        from repro.execution import Checkpointer
        from repro.protocols import voter

        path = tmp_path / "lib.ckpt"
        simulate(
            voter(1), Configuration(n=60, z=1, x0=30), 50_000, make_rng(1),
            checkpoint=Checkpointer(path, every=10),
        )
        assert main(["resume", str(path)]) == EXIT_ERROR
        assert "no CLI metadata" in capsys.readouterr().err

    def test_trace_validate_ok(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        main(self.RUN_ARGS + ["--trace", trace])
        capsys.readouterr()
        assert main(["trace", "validate", trace]) == 0
        out = capsys.readouterr().out
        assert "mode=strict" in out
        assert "complete=true" in out

    def test_trace_validate_invalid_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "round", "t": 1, "count": 3}\n')
        assert main(["trace", "validate", str(bad)]) == EXIT_INVALID_TRACE
        assert "invalid trace" in capsys.readouterr().err

    def test_trace_validate_salvage_recovers_prefix(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(self.RUN_ARGS + ["--trace", str(trace)])
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        torn = tmp_path / "torn.jsonl"
        # Drop the run_end and tear the last round record in half.
        torn.write_text("\n".join(lines[:-2] + [lines[-2][: len(lines[-2]) // 2]]))
        assert main(["trace", "validate", str(torn)]) == EXIT_INVALID_TRACE
        capsys.readouterr()
        salvaged_path = tmp_path / "salvaged.jsonl"
        assert main(
            ["trace", "validate", str(torn), "--salvage",
             "--output", str(salvaged_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "mode=salvage" in out
        assert "complete=false" in out
        from repro.telemetry.jsonl import read_trace

        salvaged = read_trace(salvaged_path)
        assert salvaged[0]["kind"] == "run_start"
        assert len(salvaged) == len(lines) - 2

    def test_run_trace_format_columnar(self, tmp_path, capsys):
        from repro.telemetry import detect_trace_format, read_trace

        ctrace = tmp_path / "run.ctrace"
        jsonl = tmp_path / "run.jsonl"
        assert main(
            self.RUN_ARGS + ["--trace", str(ctrace),
                             "--trace-format", "columnar"]
        ) == 0
        assert main(self.RUN_ARGS + ["--trace", str(jsonl)]) == 0
        capsys.readouterr()
        assert detect_trace_format(ctrace) == "columnar"

        timing_fields = ("wall_s", "wall_clock_s", "rounds_per_second")

        def timing_free(path):
            return [
                {k: v for k, v in record.items() if k not in timing_fields}
                for record in read_trace(path)
                if record.get("kind") != "span"
            ]

        assert timing_free(ctrace) == timing_free(jsonl)
        assert main(["trace", "validate", str(ctrace)]) == 0
        assert "complete=true" in capsys.readouterr().out

    def test_trace_convert_both_directions(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        main(self.RUN_ARGS + ["--trace", str(jsonl)])
        capsys.readouterr()
        ctrace = tmp_path / "run.ctrace"
        assert main(["trace", "convert", str(jsonl), str(ctrace)]) == 0
        out = capsys.readouterr().out
        assert "source_format=jsonl" in out
        assert "target_format=columnar" in out
        back = tmp_path / "back.jsonl"
        assert main(["trace", "convert", str(ctrace), str(back)]) == 0
        assert "target_format=jsonl" in capsys.readouterr().out
        assert back.read_bytes() == jsonl.read_bytes()

    def test_trace_convert_invalid_exits_three(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "round", "t": 1, "count": 3}\n')
        code = main(["trace", "convert", str(bad), str(tmp_path / "o.ctrace")])
        assert code == EXIT_INVALID_TRACE
        assert "invalid trace" in capsys.readouterr().err
        assert not (tmp_path / "o.ctrace").exists()

    def test_trace_convert_missing_source_exits_one(self, tmp_path, capsys):
        code = main(
            ["trace", "convert", str(tmp_path / "absent.jsonl"),
             str(tmp_path / "o.ctrace")]
        )
        assert code == EXIT_INVALID_TRACE or code == EXIT_ERROR

    def test_trace_index_command(self, tmp_path, capsys):
        main(self.RUN_ARGS + ["--trace", str(tmp_path / "a.jsonl")])
        main(self.RUN_ARGS + ["--trace", str(tmp_path / "b.ctrace"),
                              "--trace-format", "columnar"])
        capsys.readouterr()
        assert main(["trace", "index", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "traces=2" in out and "refreshed=2" in out
        assert "a.jsonl: format=jsonl" in out
        assert "b.ctrace: format=columnar" in out
        # Warm second run: answered from the cache.
        assert main(["trace", "index", str(tmp_path)]) == 0
        assert "refreshed=0" in capsys.readouterr().out
        # And --rebuild forces a full re-summarization.
        assert main(["trace", "index", str(tmp_path), "--rebuild"]) == 0
        assert "refreshed=2" in capsys.readouterr().out

    def test_trace_index_missing_directory(self, tmp_path, capsys):
        assert main(["trace", "index", str(tmp_path / "nope")]) == EXIT_ERROR
        assert "no directory" in capsys.readouterr().err

    def test_bench_timeout_flags_slow_experiment(self, tmp_path, monkeypatch):
        import time as time_module

        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        repo_benchmarks = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
        (bench_dir / "pytest.ini").write_text(
            "[pytest]\npython_files = bench_*.py\n"
        )
        (bench_dir / "conftest.py").write_text(
            "import sys\n"
            f"sys.path.insert(0, {str(repo_benchmarks)!r})\n"
        )
        (bench_dir / "bench_slow.py").write_text(
            "import time\n"
            "from _harness import emit, run_once\n"
            "\n"
            "def test_slow(benchmark):\n"
            "    run_once(benchmark, time.sleep, 30.0, experiment='E99_slow')\n"
            "    emit('E99_slow', 'unreachable')\n"
        )
        results_dir = tmp_path / "results"
        results_dir.mkdir()
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(results_dir))
        started = time_module.time()
        code = main(["bench", "--timeout", "1", "--bench-dir", str(bench_dir)])
        elapsed = time_module.time() - started
        assert code == EXIT_BENCH_TIMEOUT
        # Budget 1s + pytest startup; nowhere near the 30s sleep.
        assert elapsed < 20
        record = json.loads((results_dir / "BENCH_E99_slow.json").read_text())
        assert record["status"] == "failed"
        assert record["error"]["kind"] == "timeout"
        assert record["error"]["elapsed_s"] == pytest.approx(1.0, abs=0.75)


class TestEnsembleRuns:
    ARGS = [
        "run", "voter", "--n", "64", "--x0", "32", "--rounds", "3000",
        "--seed", "7",
    ]

    def test_run_replicas_prints_stats(self, capsys):
        code = main(
            self.ARGS + ["--replicas", "8", "--workers", "2", "--shards", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trials=8" in out
        assert "failed_shards=0" in out
        assert "attempted_trials=8" in out
        assert "median=" in out

    def test_run_workers_is_result_invariant(self, capsys):
        main(self.ARGS + ["--replicas", "8", "--workers", "1", "--shards", "4"])
        one = capsys.readouterr().out
        main(self.ARGS + ["--replicas", "8", "--workers", "4", "--shards", "4"])
        four = capsys.readouterr().out
        # The header names the worker count; the statistics must not.
        strip = lambda text: [
            line for line in text.splitlines() if "workers=" not in line
        ]
        assert strip(one) == strip(four)

    def test_run_workers_without_replicas_uses_the_supervisor(self, capsys):
        code = main(self.ARGS + ["--workers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trials=1" in out

    def test_run_lost_shards_exit_code(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "ensemble:after_round:10")
        monkeypatch.setenv("REPRO_FAULT_SHARD", "1")
        monkeypatch.setenv("REPRO_FAULT_STICKY", "1")
        code = main(
            self.ARGS
            + ["--replicas", "8", "--workers", "2", "--shards", "4",
               "--max-retries", "0"]
        )
        captured = capsys.readouterr()
        assert code == 7
        assert "failed_shards=1" in captured.out
        assert "lost past the retry budget" in captured.err

    def test_run_ensemble_writes_valid_merged_trace(self, tmp_path, capsys):
        trace = tmp_path / "ensemble.jsonl"
        code = main(
            self.ARGS
            + ["--replicas", "6", "--workers", "2", "--shards", "3",
               "--trace", str(trace)]
        )
        capsys.readouterr()
        assert code == 0
        assert main(["trace", "validate", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "complete=true" in out

    def test_report_strict_flags_degraded_records(self, tmp_path, capsys):
        (tmp_path / "BENCH_E_ens.json").write_text(
            json.dumps(
                {
                    "experiment": "E_ens",
                    "schema": 1,
                    "wall_clock_s": 0.5,
                    "ensemble": {
                        "trials": 4,
                        "censored": 0,
                        "failed_shards": 1,
                        "attempted_trials": 8,
                    },
                }
            )
        )
        assert main(["report", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path), "--strict"]) == EXIT_PERF_REGRESSION
        assert "degraded" in capsys.readouterr().out

    def test_bench_workers_rejects_nonpositive(self, capsys):
        assert main(["bench", "--workers", "0", "--list"]) == EXIT_ERROR
        assert "--workers" in capsys.readouterr().err


class TestScenarioCli:
    ARGS = [
        "run", "voter", "--n", "48", "--x0", "24", "--rounds", "4000",
        "--seed", "11",
    ]

    def test_scenarios_list_prints_registry(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("null", "churn", "lossy", "corrupt", "lying-source",
                     "flip-source", "drift", "zealots"):
            assert f"{name}:" in out
        assert "rate" in out  # parameter schemas are printed too

    def test_scenario_run_prints_recovery_stats(self, capsys):
        code = main(self.ARGS + ["--replicas", "6", "--scenario",
                                 "flip-source:at=12"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario=flip-source:at=12" in out
        assert "settle_round=12" in out
        assert "recovery_median=" in out
        assert "recovery_q90=" in out

    def test_scenario_flag_alone_routes_to_ensemble(self, capsys):
        # --scenario without --replicas still runs the ensemble machinery
        code = main(self.ARGS + ["--scenario", "lossy:rate=0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trials=1" in out
        assert "scenario=lossy:rate=0.1" in out

    def test_repeated_scenario_flags_compose(self, capsys):
        code = main(
            self.ARGS
            + ["--replicas", "4", "--scenario", "lossy:rate=0.1",
               "--scenario", "flip-source:at=12"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario=lossy:rate=0.1+flip-source:at=12" in out

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        code = main(self.ARGS + ["--replicas", "4", "--scenario", "bogus"])
        captured = capsys.readouterr()
        assert code == EXIT_ERROR
        assert "unknown scenario" in captured.err
        assert '"' not in captured.err.split("repro:")[1].split("\n")[0]

    def test_scenario_trace_round_trips_through_report(self, tmp_path, capsys):
        trace = tmp_path / "hostile.jsonl"
        code = main(
            self.ARGS
            + ["--replicas", "4", "--scenario", "flip-source:at=12",
               "--trace", str(trace)]
        )
        capsys.readouterr()
        assert code == 0
        assert main(["trace", "validate", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "flip-source:at=12" in out
        assert "recovery" in out
