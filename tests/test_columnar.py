"""Tests for the columnar trace container (sink, salvage, converters)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dynamics.config import Configuration, wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate
from repro.protocols import voter
from repro.telemetry import (
    ColumnarTraceWriter,
    JsonlTraceWriter,
    columnar_tail_round,
    columnar_to_jsonl,
    detect_trace_format,
    jsonl_to_columnar,
    load_columnar_data,
    open_trace_writer,
    read_columnar_trace,
    read_trace,
    validate_trace,
    write_trace_records,
)
from repro.telemetry.columnar import TRACE_FORMATS
from repro.telemetry.jsonl import COLUMNAR_MAGIC


def _traced_run(path, trace_format, seed=3, chunk_rounds=None, n=80):
    """Run a small simulation through the chosen sink; return the result."""
    kwargs = {} if chunk_rounds is None else {"chunk_rounds": chunk_rounds}
    config = wrong_consensus_configuration(n, z=1)
    with open_trace_writer(
        path, trace_format, include_timings=False, **kwargs
    ) as writer:
        return simulate(voter(1), config, 50_000, make_rng(seed), recorder=writer)


class TestColumnarSink:
    def test_records_match_jsonl_sink_exactly(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        ctrace = tmp_path / "run.ctrace"
        _traced_run(jsonl, "jsonl")
        _traced_run(ctrace, "columnar")
        assert read_trace(ctrace) == read_trace(jsonl)

    def test_tmp_until_close_then_atomic_rename(self, tmp_path):
        path = tmp_path / "run.ctrace"
        writer = ColumnarTraceWriter(path, include_timings=False)
        config = Configuration(n=64, z=1, x0=1)
        simulate(voter(1), config, 50_000, make_rng(0), recorder=writer)
        assert not path.exists()
        assert path.with_name("run.ctrace.tmp").exists()
        writer.close()
        assert path.exists()
        assert not path.with_name("run.ctrace.tmp").exists()

    def test_chunking_is_invisible_to_readers(self, tmp_path):
        one = tmp_path / "one.ctrace"
        many = tmp_path / "many.ctrace"
        _traced_run(one, "columnar", chunk_rounds=1)
        _traced_run(many, "columnar", chunk_rounds=4096)
        assert read_trace(one) == read_trace(many)
        assert one.stat().st_size > many.stat().st_size  # framing overhead

    def test_validates_like_jsonl(self, tmp_path):
        path = tmp_path / "run.ctrace"
        _traced_run(path, "columnar")
        records = validate_trace(path)
        assert records[0]["kind"] == "run_start"
        assert records[-1]["kind"] == "run_end"

    def test_rejects_file_objects(self):
        import io

        with pytest.raises(TypeError, match="path"):
            ColumnarTraceWriter(io.BytesIO())  # type: ignore[arg-type]

    def test_rejects_bad_chunk_rounds(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_rounds"):
            ColumnarTraceWriter(tmp_path / "x.ctrace", chunk_rounds=0)

    def test_write_after_close_raises(self, tmp_path):
        writer = ColumnarTraceWriter(tmp_path / "x.ctrace")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.round_recorded(1, 10)

    def test_open_trace_writer_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            open_trace_writer(tmp_path / "x", "parquet")
        assert TRACE_FORMATS == ("jsonl", "columnar")


class TestSalvage:
    def test_torn_tail_salvages_to_prefix(self, tmp_path):
        path = tmp_path / "run.ctrace"
        _traced_run(path, "columnar", chunk_rounds=8)
        complete = read_trace(path)
        blob = path.read_bytes()
        torn = tmp_path / "torn.ctrace"
        torn.write_bytes(blob[: len(blob) - len(blob) // 3])
        with pytest.raises(ValueError, match="torn"):
            read_columnar_trace(torn)
        salvaged = read_trace(torn, salvage=True)
        assert 0 < len(salvaged) < len(complete)
        assert salvaged == complete[: len(salvaged)]

    def test_corrupt_chunk_detected_by_crc(self, tmp_path):
        path = tmp_path / "run.ctrace"
        _traced_run(path, "columnar", chunk_rounds=8)
        blob = bytearray(path.read_bytes())
        # Flip a payload byte mid-file, past the first chunk's framing.
        blob[len(blob) // 2] ^= 0xFF
        bad = tmp_path / "bad.ctrace"
        bad.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="byte"):
            read_columnar_trace(bad)
        salvaged = read_trace(bad, salvage=True)
        assert salvaged == read_trace(path)[: len(salvaged)]

    def test_empty_file_is_empty_not_an_error(self, tmp_path):
        empty = tmp_path / "empty.ctrace"
        empty.write_bytes(b"")
        assert read_columnar_trace(empty) == []


class TestConverters:
    def test_jsonl_columnar_jsonl_is_byte_identical(self, tmp_path):
        original = tmp_path / "run.jsonl"
        _traced_run(original, "jsonl")
        container = tmp_path / "run.ctrace"
        recovered = tmp_path / "back.jsonl"
        count = jsonl_to_columnar(original, container)
        assert columnar_to_jsonl(container, recovered) == count
        assert recovered.read_bytes() == original.read_bytes()

    def test_detect_trace_format(self, tmp_path):
        jsonl = tmp_path / "a.jsonl"
        ctrace = tmp_path / "a.ctrace"
        _traced_run(jsonl, "jsonl")
        jsonl_to_columnar(jsonl, ctrace)
        assert detect_trace_format(jsonl) == "jsonl"
        assert detect_trace_format(ctrace) == "columnar"
        assert ctrace.read_bytes().startswith(COLUMNAR_MAGIC)

    def test_convert_refuses_invalid_source(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "round", "t": 1, "count": 3}\n')
        with pytest.raises(ValueError):
            jsonl_to_columnar(bad, tmp_path / "bad.ctrace")

    def test_mixed_value_types_survive_round_trip(self, tmp_path):
        # int-ness, floats, bools, strings, missing fields: every column
        # encoding path in one stream.
        records = [
            {"kind": "run_start", "schema": 1, "runner": "simulate",
             "params": {}, "protocol": {"name": "t", "ell": 1,
             "g0": [0.0, 1.0], "g1": None, "fingerprint": "x" * 16},
             "rng": {"bit_generator": "PCG64", "state_hash": "0" * 16},
             "repro_version": "0"},
            {"kind": "round", "t": 1, "count": 10, "drift": -0.5},
            {"kind": "round", "t": 2, "count": 9.5, "active": 3},
            {"kind": "round", "t": 3, "count": 9, "note": "spike",
             "flag": True},
            {"kind": "round", "t": 4, "count": 2 ** 60},
            {"kind": "run_end", "converged": False, "rounds": 4,
             "final_round": 4, "rounds_recorded": 4},
        ]
        target = tmp_path / "mixed.ctrace"
        write_trace_records(target, records, "columnar", chunk_rounds=2)
        decoded = read_columnar_trace(target)
        assert decoded == records
        # Value *and* type identity — 9 must come back int, 9.5 float.
        assert [json.dumps(r, sort_keys=True) for r in decoded] == [
            json.dumps(r, sort_keys=True) for r in records
        ]


class TestColumnarTail:
    def test_tail_without_full_decode(self, tmp_path):
        path = tmp_path / "run.ctrace"
        result = _traced_run(path, "columnar", chunk_rounds=16)
        tail = columnar_tail_round(path)
        assert tail is not None and tail["t"] == result.rounds

    def test_tail_of_torn_tmp_returns_last_complete_round(self, tmp_path):
        path = tmp_path / "run.ctrace"
        _traced_run(path, "columnar", chunk_rounds=8)
        blob = path.read_bytes()
        torn = tmp_path / "live.ctrace.tmp"
        torn.write_bytes(blob[: len(blob) - 7])
        tail = columnar_tail_round(torn)
        salvaged_rounds = [
            r for r in read_trace(torn, salvage=True) if r["kind"] == "round"
        ]
        assert tail == salvaged_rounds[-1]

    def test_tail_missing_or_empty_is_none(self, tmp_path):
        assert columnar_tail_round(tmp_path / "absent.ctrace") is None
        empty = tmp_path / "empty.ctrace"
        empty.write_bytes(b"")
        assert columnar_tail_round(empty) is None


class TestLoadColumnarData:
    def test_columns_match_record_fields(self, tmp_path):
        path = tmp_path / "run.ctrace"
        _traced_run(path, "columnar", chunk_rounds=16)
        data = load_columnar_data(path)
        records = read_columnar_trace(path)
        rounds = [r for r in records if r["kind"] == "round"]
        assert data.rounds == len(rounds)
        assert data.start == records[0]
        assert data.end == records[-1]
        counts = data.column("count")
        assert counts is not None
        np.testing.assert_array_equal(counts, [r["count"] for r in rounds])

    def test_partial_fields_are_mask_filtered(self, tmp_path):
        records = [
            {"kind": "run_start", "schema": 1, "runner": "simulate",
             "params": {}, "protocol": {"name": "t", "ell": 1,
             "g0": [0.0, 1.0], "g1": None, "fingerprint": "x" * 16},
             "rng": {"bit_generator": "PCG64", "state_hash": "0" * 16},
             "repro_version": "0"},
            {"kind": "round", "t": 1, "count": 10},
            {"kind": "round", "t": 2, "count": 9, "drift": -1.0},
            {"kind": "run_end", "converged": False, "rounds": 2,
             "final_round": 2, "rounds_recorded": 2},
        ]
        target = tmp_path / "partial.ctrace"
        write_trace_records(target, records, "columnar")
        data = load_columnar_data(target)
        drift = data.column("drift")
        assert drift is not None
        np.testing.assert_array_equal(drift, [-1.0])
        assert data.column("nope") is None

    def test_invalid_trace_raises_like_strict_validator(self, tmp_path):
        records = [
            {"kind": "round", "t": 1, "count": 3},
        ]
        target = tmp_path / "headless.ctrace"
        write_trace_records(target, records, "columnar")
        with pytest.raises(ValueError, match="run_start"):
            load_columnar_data(target)

    def test_jsonl_writer_still_unaffected(self, tmp_path):
        # Guard the sniffing seam: a JSONL trace through the same helpers.
        path = tmp_path / "run.jsonl"
        _traced_run(path, "jsonl")
        assert detect_trace_format(path) == "jsonl"
        with pytest.raises(ValueError):
            load_columnar_data(path)
