"""Reproducibility: everything stochastic is a pure function of its seed."""

from __future__ import annotations

import numpy as np

from repro.dual.coalescing import dual_absorption_times
from repro.dynamics.config import Configuration
from repro.dynamics.rng import make_rng, spawn_rngs
from repro.dynamics.run import simulate, simulate_ensemble
from repro.dynamics.sequential import simulate_sequential
from repro.protocols import minority, voter


class TestSeedDeterminism:
    def test_simulate_is_seed_deterministic(self):
        config = Configuration(n=200, z=1, x0=100)
        a = simulate(voter(1), config, 50_000, make_rng(99), record=True)
        b = simulate(voter(1), config, 50_000, make_rng(99), record=True)
        assert a.rounds == b.rounds
        np.testing.assert_array_equal(a.trajectory, b.trajectory)

    def test_ensemble_is_seed_deterministic(self):
        config = Configuration(n=150, z=1, x0=75)
        a = simulate_ensemble(minority(3), config, 100, make_rng(5), replicas=20)
        b = simulate_ensemble(minority(3), config, 100, make_rng(5), replicas=20)
        np.testing.assert_array_equal(np.nan_to_num(a, nan=-1), np.nan_to_num(b, nan=-1))

    def test_sequential_is_seed_deterministic(self):
        config = Configuration(n=40, z=1, x0=20)
        a = simulate_sequential(voter(1), config, 10**7, make_rng(3))
        b = simulate_sequential(voter(1), config, 10**7, make_rng(3))
        assert a.activations == b.activations

    def test_dual_is_seed_deterministic(self):
        a = dual_absorption_times(80, 5000, make_rng(11))
        b = dual_absorption_times(80, 5000, make_rng(11))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        config = Configuration(n=200, z=1, x0=100)
        a = simulate(voter(1), config, 50_000, make_rng(1), record=True)
        b = simulate(voter(1), config, 50_000, make_rng(2), record=True)
        assert a.rounds != b.rounds or not np.array_equal(a.trajectory, b.trajectory)


class TestTraceDeterminism:
    """Equal seeds produce byte-identical traces (timings excluded)."""

    @staticmethod
    def _trace_bytes(path, seed):
        from repro.telemetry import JsonlTraceWriter

        config = Configuration(n=120, z=1, x0=60)
        with JsonlTraceWriter(path, include_timings=False) as writer:
            simulate(voter(1), config, 50_000, make_rng(seed), recorder=writer)
        return path.read_bytes()

    def test_equal_seed_traces_are_byte_identical(self, tmp_path):
        a = self._trace_bytes(tmp_path / "a.jsonl", seed=42)
        b = self._trace_bytes(tmp_path / "b.jsonl", seed=42)
        assert a == b

    def test_different_seed_traces_differ(self, tmp_path):
        a = self._trace_bytes(tmp_path / "a.jsonl", seed=42)
        b = self._trace_bytes(tmp_path / "b.jsonl", seed=43)
        assert a != b

    def test_recorder_does_not_consume_randomness(self):
        from repro.telemetry import MetricsRecorder

        config = Configuration(n=200, z=1, x0=100)
        bare = simulate(voter(1), config, 50_000, make_rng(7), record=True)
        recorded = simulate(
            voter(1), config, 50_000, make_rng(7), record=True,
            recorder=MetricsRecorder(),
        )
        np.testing.assert_array_equal(bare.trajectory, recorded.trajectory)

    def test_timed_traces_still_structurally_equal(self, tmp_path):
        from repro.telemetry import JsonlTraceWriter, read_trace

        config = Configuration(n=120, z=1, x0=60)
        traces = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            with JsonlTraceWriter(path) as writer:
                simulate(voter(1), config, 50_000, make_rng(9), recorder=writer)
            traces.append(read_trace(path))
        wall_keys = {"wall_s", "wall_clock_s", "rounds_per_second"}
        stripped = [
            [{k: v for k, v in record.items() if k not in wall_keys}
             for record in trace]
            for trace in traces
        ]
        assert stripped[0] == stripped[1]


class TestSpawnedStreams:
    def test_spawned_streams_are_deterministic(self):
        a = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 5)]
        b = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 5)]
        assert a == b

    def test_spawned_streams_are_distinct(self):
        values = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 5)]
        assert len(set(values)) == 5

    def test_spawn_count_validated(self):
        import pytest

        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
