"""Reproducibility: everything stochastic is a pure function of its seed."""

from __future__ import annotations

import numpy as np

from repro.dual.coalescing import dual_absorption_times
from repro.dynamics.config import Configuration
from repro.dynamics.rng import make_rng, spawn_rngs
from repro.dynamics.run import simulate, simulate_ensemble
from repro.dynamics.sequential import simulate_sequential
from repro.protocols import minority, voter


class TestSeedDeterminism:
    def test_simulate_is_seed_deterministic(self):
        config = Configuration(n=200, z=1, x0=100)
        a = simulate(voter(1), config, 50_000, make_rng(99), record=True)
        b = simulate(voter(1), config, 50_000, make_rng(99), record=True)
        assert a.rounds == b.rounds
        np.testing.assert_array_equal(a.trajectory, b.trajectory)

    def test_ensemble_is_seed_deterministic(self):
        config = Configuration(n=150, z=1, x0=75)
        a = simulate_ensemble(minority(3), config, 100, make_rng(5), replicas=20)
        b = simulate_ensemble(minority(3), config, 100, make_rng(5), replicas=20)
        np.testing.assert_array_equal(np.nan_to_num(a, nan=-1), np.nan_to_num(b, nan=-1))

    def test_sequential_is_seed_deterministic(self):
        config = Configuration(n=40, z=1, x0=20)
        a = simulate_sequential(voter(1), config, 10**7, make_rng(3))
        b = simulate_sequential(voter(1), config, 10**7, make_rng(3))
        assert a.activations == b.activations

    def test_dual_is_seed_deterministic(self):
        a = dual_absorption_times(80, 5000, make_rng(11))
        b = dual_absorption_times(80, 5000, make_rng(11))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        config = Configuration(n=200, z=1, x0=100)
        a = simulate(voter(1), config, 50_000, make_rng(1), record=True)
        b = simulate(voter(1), config, 50_000, make_rng(2), record=True)
        assert a.rounds != b.rounds or not np.array_equal(a.trajectory, b.trajectory)


class TestSpawnedStreams:
    def test_spawned_streams_are_deterministic(self):
        a = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 5)]
        b = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 5)]
        assert a == b

    def test_spawned_streams_are_distinct(self):
        values = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 5)]
        assert len(set(values)) == 5

    def test_spawn_count_validated(self):
        import pytest

        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
