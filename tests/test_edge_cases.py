"""Edge cases: tiny populations, extreme tables, boundary counts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bias import bias_value, expected_next_count
from repro.core.lower_bound import lower_bound_certificate
from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count
from repro.dynamics.run import simulate
from repro.markov.exact import count_chain, exact_expected_convergence_time
from repro.protocols import minority, table_protocol, voter


class TestTinyPopulations:
    def test_n_equals_2(self, rng):
        """One source, one follower: the smallest meaningful population."""
        config = Configuration(n=2, z=1, x0=1)
        result = simulate(voter(1), config, 10_000, rng)
        assert result.converged

    def test_n2_exact_time_is_geometric(self):
        # The follower copies a uniform agent (itself or the source): it
        # adopts the correct opinion with probability 1/2 per round.
        exact = exact_expected_convergence_time(voter(1), Configuration(n=2, z=1, x0=1))
        assert exact == pytest.approx(2.0)

    def test_n_equals_3_chain_valid(self):
        chain = count_chain(minority(3), 3, 0)
        assert 0 in chain.absorbing_states()


class TestSampleSizeVsPopulation:
    def test_ell_larger_than_n_is_legal(self, rng):
        """Sampling is with replacement: ell > n poses no problem."""
        protocol = minority(9)
        config = Configuration(n=5, z=1, x0=1)
        x = config.x0
        for _ in range(50):
            x = step_count(protocol, 5, 1, x, rng)
            assert 1 <= x <= 5

    def test_bias_well_defined_for_large_ell(self):
        values = bias_value(minority(21), np.linspace(0, 1, 11))
        assert np.all(np.isfinite(values))


class TestExtremeTables:
    def test_always_follow_one_sample_of_self_population(self, rng):
        """g = (0, 1): adopt 1 iff the single sample holds 1 — the Voter."""
        protocol = table_protocol([0.0, 1.0], name="copy")
        np.testing.assert_allclose(protocol.g0, voter(1).g0)

    def test_inert_protocol_never_converges_from_wrong_start(self, rng):
        inert = Protocol(ell=1, g0=[0.0, 0.0], g1=[1.0, 1.0], name="inert")
        assert inert.satisfies_boundary_conditions()
        config = Configuration(n=20, z=1, x0=10)
        result = simulate(inert, config, 100, rng)
        assert not result.converged
        assert result.final_count == 10  # literally nothing moves

    def test_inert_protocol_is_zero_bias(self):
        """Stasis is zero drift: P1 = 1, P0 = 0 give F(p) = p + 0 - p = 0.

        The inert protocol is thus a Lemma-11 specimen with *zero variance*
        as well — the degenerate end of the zero-bias class whose diffusive
        escape never happens at all."""
        inert = Protocol(ell=1, g0=[0.0, 0.0], g1=[1.0, 1.0], name="inert")
        grid = np.linspace(0.1, 0.9, 9)
        np.testing.assert_allclose(bias_value(inert, grid), 0.0, atol=1e-12)
        certificate = lower_bound_certificate(inert)
        assert "Lemma 11" in certificate.case

    def test_antivoter(self, rng):
        """g = adopt the opposite of the sample, except unanimity pins.

        With ell = 2: g(0)=0, g(2)=1 (Prop 3) and g(1) = 1/2 gives the
        fair-coin middle; a legal if bizarre protocol the pipeline must
        still classify."""
        anti = table_protocol([0.0, 0.5, 1.0], name="coin-middle")
        # This is exactly the Voter at ell=2: F = 0.
        from repro.core.roots import is_zero_bias

        assert is_zero_bias(anti)


class TestBoundaryCounts:
    def test_drift_at_extreme_admissible_counts(self):
        protocol = minority(3)
        for n in (10, 100):
            assert np.isfinite(expected_next_count(protocol, n, 1, 1))
            assert np.isfinite(expected_next_count(protocol, n, 0, n - 1))

    def test_step_from_extremes_stays_admissible(self, rng):
        protocol = minority(3)
        for _ in range(100):
            assert 1 <= step_count(protocol, 10, 1, 1, rng) <= 10
            assert 0 <= step_count(protocol, 10, 0, 9, rng) <= 9

    def test_config_n2_bounds(self):
        assert Configuration.count_bounds(2, 1) == (1, 2)
        config = Configuration(n=2, z=0, x0=1)
        assert config.fraction == 0.5
