"""Tests for heartbeat files: atomic writes, salvage-tolerant reads, recorder."""

from __future__ import annotations

import json
import os

from repro.analysis.ensemble import convergence_ensemble
from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.protocols import voter
from repro.telemetry.heartbeat import (
    HEARTBEAT_SCHEMA_VERSION,
    HEARTBEAT_SUFFIX,
    Heartbeat,
    HeartbeatRecorder,
    discover_heartbeats,
    heartbeat_path,
    read_heartbeat,
    write_heartbeat,
)


class TestReadWriteRoundTrip:
    def test_round_trip_preserves_fields(self, tmp_path):
        path = tmp_path / "run.heartbeat.json"
        beat = Heartbeat(
            role="shard", status="running", pid=42, updated_at=123.5,
            round=17, max_rounds=100, replicas=4, replicas_done=1,
            rounds_per_second=250.0, shard=2, attempt=3,
            rss_bytes=1024, peak_rss_bytes=2048, cpu_s=0.75,
        )
        write_heartbeat(path, beat)
        back = read_heartbeat(path)
        assert back == beat
        assert back.schema == HEARTBEAT_SCHEMA_VERSION
        assert not path.with_name(path.name + ".tmp").exists()

    def test_heartbeat_path_appends_suffix(self, tmp_path):
        base = tmp_path / "run.ckpt"
        assert heartbeat_path(base).name == "run.ckpt" + HEARTBEAT_SUFFIX

    def test_unknown_keys_tolerated(self, tmp_path):
        # A newer writer may add fields; an older reader must not choke.
        path = tmp_path / "new.heartbeat.json"
        document = Heartbeat(role="run").to_dict()
        document["from_the_future"] = True
        path.write_text(json.dumps(document))
        assert read_heartbeat(path).role == "run"


class TestSalvageTolerance:
    def test_missing_file_reads_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "absent.heartbeat.json") is None

    def test_torn_file_reads_none(self, tmp_path):
        path = tmp_path / "torn.heartbeat.json"
        payload = json.dumps(Heartbeat(role="run").to_dict())
        path.write_text(payload[: len(payload) // 2])
        assert read_heartbeat(path) is None

    def test_wrong_shape_reads_none(self, tmp_path):
        path = tmp_path / "odd.heartbeat.json"
        path.write_text("[1, 2, 3]\n")
        assert read_heartbeat(path) is None
        path.write_text('{"no_role": true}\n')
        assert read_heartbeat(path) is None


class TestDiscovery:
    def test_base_path_collects_run_and_shards(self, tmp_path):
        base = tmp_path / "run.ckpt"
        write_heartbeat(heartbeat_path(base), Heartbeat(role="supervisor"))
        for k in range(2):
            write_heartbeat(
                heartbeat_path(base.with_name(f"{base.name}.shard{k}")),
                Heartbeat(role="shard", shard=k),
            )
        entries = discover_heartbeats(base)
        assert len(entries) == 3
        roles = [beat.role for _, beat in entries]
        assert roles.count("shard") == 2 and roles.count("supervisor") == 1

    def test_directory_discovery_keeps_torn_entries(self, tmp_path):
        write_heartbeat(tmp_path / f"a{HEARTBEAT_SUFFIX}", Heartbeat(role="run"))
        (tmp_path / f"b{HEARTBEAT_SUFFIX}").write_text('{"torn')
        entries = discover_heartbeats(tmp_path)
        assert len(entries) == 2
        parsed = {path.name: beat for path, beat in entries}
        assert parsed[f"a{HEARTBEAT_SUFFIX}"] is not None
        assert parsed[f"b{HEARTBEAT_SUFFIX}"] is None  # rendered, not hidden


class TestTerminalStates:
    def test_terminal_property(self):
        assert not Heartbeat(role="run", status="running").terminal
        for status in ("done", "failed", "interrupted"):
            assert Heartbeat(role="run", status=status).terminal

    def test_age_against_fixed_now(self):
        beat = Heartbeat(role="run", updated_at=100.0)
        assert beat.age_s(now=103.5) == 3.5
        assert beat.age_s(now=99.0) == 0.0  # clock skew clamps at zero


class TestHeartbeatRecorder:
    def test_interval_zero_flushes_every_round(self, tmp_path):
        path = tmp_path / "run.heartbeat.json"
        recorder = HeartbeatRecorder(path, role="run", interval_s=0.0)
        recorder.round_recorded(1, 10)
        recorder.round_recorded(2, 9)
        recorder.round_recorded(3, 8)
        assert recorder.writes == 3
        assert read_heartbeat(path).round == 3

    def test_interval_throttles_by_clock(self, tmp_path):
        ticks = iter([0.0, 0.1, 0.2, 5.0, 5.0, 5.1])
        recorder = HeartbeatRecorder(
            tmp_path / "run.heartbeat.json", role="run", interval_s=1.0,
            _clock=lambda: next(ticks),
        )
        recorder.round_recorded(1, 10)   # first write always lands
        recorder.round_recorded(2, 9)    # 0.2s later: throttled
        recorder.round_recorded(3, 8)    # 5.0s later: flushed
        assert recorder.writes == 2

    def test_over_a_real_ensemble_run(self, tmp_path):
        path = tmp_path / "ens.heartbeat.json"
        recorder = HeartbeatRecorder(path, role="run", interval_s=0.0)
        stats = convergence_ensemble(
            voter(1), wrong_consensus_configuration(48, 1), 5000,
            make_rng(3), 4, recorder=recorder,
        )
        beat = read_heartbeat(path)
        assert beat.status == "done"
        assert beat.pid == os.getpid()
        assert beat.replicas == 4
        assert beat.replicas_done == stats.trials + stats.censored
        assert beat.max_rounds == 5000
        assert beat.round >= 1
        assert beat.rss_bytes > 0 and beat.cpu_s >= 0.0

    def test_attaching_recorder_never_perturbs_results(self, tmp_path):
        config = wrong_consensus_configuration(48, 1)
        plain = convergence_ensemble(voter(1), config, 5000, make_rng(3), 4)
        observed = convergence_ensemble(
            voter(1), config, 5000, make_rng(3), 4,
            recorder=HeartbeatRecorder(
                tmp_path / "obs.heartbeat.json", role="run", interval_s=0.0
            ),
        )
        assert plain.median == observed.median
        assert plain.trials == observed.trials
