"""End-to-end integration tests: miniature versions of the reproductions.

These tie the layers together — protocol -> bias analysis -> certificate ->
engines -> statistics — on budgets small enough for the unit-test suite,
asserting the same *shapes* the full benchmarks assert at scale.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    Configuration,
    adversarial_configurations,
    lower_bound_certificate,
    make_rng,
    minority,
    simulate,
    simulate_ensemble,
    verify_escape_assumptions,
    voter,
)
from repro.analysis.scaling import fit_power_law
from repro.core.theory import minority_sqrt_sample_size, voter_upper_bound_rounds
from repro.dynamics.run import escape_time_ensemble


class TestTheorem1Miniature:
    """The full lower-bound pipeline on a small sweep."""

    def test_minority_escape_beats_sqrt_n(self, rng):
        certificate = lower_bound_certificate(minority(3))
        for n in (256, 512, 1024):
            report = verify_escape_assumptions(certificate, n, epsilon=0.5)
            assert report.drift_ok and report.jump_ok
            times = escape_time_ensemble(
                minority(3), certificate, n, 2 * n, rng, replicas=4
            )
            bound = math.sqrt(n)
            observed = np.where(np.isnan(times), 2 * n, times)
            assert np.all(observed >= bound)

    def test_voter_escape_beats_sqrt_n(self, rng):
        certificate = lower_bound_certificate(voter(1))
        n = 4096
        times = escape_time_ensemble(voter(1), certificate, n, 40 * n, rng, replicas=4)
        observed = np.where(np.isnan(times), 40 * n, times)
        assert np.all(observed >= math.sqrt(n))


class TestTheorem2Miniature:
    def test_voter_within_bound_from_every_adversarial_start(self, rng):
        n = 256
        horizon = int(voter_upper_bound_rounds(n))
        for config in adversarial_configurations(n):
            result = simulate(voter(1), config, horizon, rng)
            assert result.converged, config


class TestSelfStabilization:
    """A protocol must converge from *every* initial configuration."""

    def test_voter_is_self_stabilizing(self, rng):
        n = 128
        for config in adversarial_configurations(n):
            result = simulate(voter(1), config, 200_000, rng)
            assert result.converged, config

    def test_sqrt_minority_is_self_stabilizing(self, rng):
        n = 1024
        protocol = minority(minority_sqrt_sample_size(n))
        for config in adversarial_configurations(n):
            result = simulate(protocol, config, 2_000, rng)
            assert result.converged, config

    def test_constant_minority_fails_self_stabilization_budget(self, rng):
        """The other side of the dichotomy on the same panel."""
        n = 1024
        failures = 0
        for config in adversarial_configurations(n):
            result = simulate(minority(3), config, 200, rng)
            failures += not result.converged
        assert failures > 0


class TestScalingShapes:
    def test_voter_tau_scales_linearly(self, rng_factory):
        sizes = (64, 128, 256, 512)
        medians = []
        for i, n in enumerate(sizes):
            config = Configuration(n=n, z=1, x0=1)
            times = simulate_ensemble(
                voter(1), config, 10**6, rng_factory(i), replicas=15
            )
            medians.append(float(np.median(times)))
        fit = fit_power_law(list(sizes), medians)
        assert 0.7 <= fit.exponent <= 1.4

    def test_sqrt_minority_tau_flat(self, rng_factory):
        sizes = (256, 1024, 4096)
        medians = []
        for i, n in enumerate(sizes):
            protocol = minority(minority_sqrt_sample_size(n))
            config = Configuration(n=n, z=1, x0=1)
            times = simulate_ensemble(protocol, config, 500, rng_factory(i), 10)
            medians.append(float(np.median(times)))
        fit = fit_power_law(list(sizes), medians)
        assert fit.exponent < 0.3


class TestCrossEngineConsistency:
    def test_exact_time_within_monte_carlo_band(self, rng):
        from repro.markov.exact import exact_expected_convergence_time

        config = Configuration(n=30, z=1, x0=10)
        exact = exact_expected_convergence_time(voter(1), config)
        times = simulate_ensemble(voter(1), config, 10**6, rng, replicas=300)
        standard_error = float(np.std(times) / math.sqrt(len(times)))
        assert abs(float(np.mean(times)) - exact) < 5 * standard_error + 1e-9

    def test_sequential_simulation_matches_birth_death(self, rng):
        from repro.dynamics.sequential import simulate_sequential
        from repro.markov.birth_death import sequential_birth_death_chain

        n = 32
        config = Configuration(n=n, z=1, x0=16)
        exact = sequential_birth_death_chain(voter(1), n, 1).expected_time_to_top(16)
        samples = [
            simulate_sequential(voter(1), config, 10**8, rng).activations
            for _ in range(100)
        ]
        standard_error = float(np.std(samples) / math.sqrt(len(samples)))
        assert abs(float(np.mean(samples)) - exact) < 5 * standard_error + 1.0
