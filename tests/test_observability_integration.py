"""End-to-end observability: scrape /metrics while a supervised run is live.

The acceptance criterion behind these tests: a supervised ensemble with the
metrics endpoint attached serves grammar-valid payloads *mid-run* (not just
a final snapshot), and the quarantine transition is observable in them.
``scripts/metrics_smoke.py`` proves the same over the real CLI subprocess;
here the pool runs in-process so failures are debuggable under pytest.
"""

from __future__ import annotations

import threading
import time
import urllib.request

from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.execution.supervisor import (
    SupervisorConfig,
    run_supervised_ensemble,
)
from repro.protocols import voter
from repro.telemetry.heartbeat import discover_heartbeats, read_heartbeat
from repro.telemetry.prometheus import (
    MetricsServer,
    render_metrics,
    validate_exposition,
)


def heartbeat_collector(base):
    def collect() -> str:
        beats = [b for _, b in discover_heartbeats(base) if b is not None]
        return render_metrics(None, beats)

    return collect


class TestMidRunScrapes:
    def test_every_mid_run_payload_validates(self, tmp_path):
        base = tmp_path / "run.ckpt"
        payloads: list = []
        stop = threading.Event()

        def scrape_loop(url: str) -> None:
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(url, timeout=5) as response:
                        payloads.append(response.read().decode("utf-8"))
                except OSError:
                    pass
                time.sleep(0.02)

        with MetricsServer(heartbeat_collector(base), port=0) as server:
            scraper = threading.Thread(
                target=scrape_loop, args=(server.url,), daemon=True
            )
            scraper.start()
            try:
                # The pool blocks this (main) thread; the scraper races it.
                # interval 0.0 = heartbeats rewritten every round.
                result = run_supervised_ensemble(
                    voter(1),
                    wrong_consensus_configuration(512, 1),
                    20000,
                    make_rng(11),
                    8,
                    supervisor=SupervisorConfig(workers=2, shards=4),
                    checkpoint_base=base,
                    heartbeat_base=base,
                    heartbeat_every_s=0.0,
                )
            finally:
                stop.set()
                scraper.join(timeout=10)

        assert result.failed_shards == 0
        assert payloads, "the run finished before a single scrape landed"
        for payload in payloads:
            validate_exposition(payload)
        live = [p for p in payloads if "repro_progress_rounds" in p]
        assert live, "no scrape ever observed heartbeat progress"
        # The last heartbeat-bearing payload reflects the supervisor's view.
        assert "repro_shards 4" in live[-1]

    def test_final_state_scrapeable_post_mortem(self, tmp_path):
        base = tmp_path / "run.ckpt"
        run_supervised_ensemble(
            voter(1), wrong_consensus_configuration(64, 1), 5000,
            make_rng(5), 4,
            supervisor=SupervisorConfig(workers=2, shards=2),
            checkpoint_base=base,
            heartbeat_every_s=0.0,
        )
        # The run is dead; the files alone must still render a full story.
        payload = heartbeat_collector(base)()
        validate_exposition(payload)
        assert 'repro_heartbeat_up{role="supervisor"} 0' in payload
        assert "repro_progress_replicas_done" in payload


class TestQuarantineObservability:
    def test_quarantine_ticks_the_gauge_and_marks_the_shard(
        self, tmp_path, monkeypatch
    ):
        # Sticky fault on shard 0 with a zero retry budget: the first death
        # quarantines it, and the transition must be durably observable.
        monkeypatch.setenv("REPRO_FAULT", "ensemble:after_round:3")
        monkeypatch.setenv("REPRO_FAULT_SHARD", "0")
        monkeypatch.setenv("REPRO_FAULT_STICKY", "1")
        base = tmp_path / "run.ckpt"
        result = run_supervised_ensemble(
            voter(1), wrong_consensus_configuration(64, 1), 5000,
            make_rng(5), 4,
            supervisor=SupervisorConfig(
                workers=2, shards=2, max_retries=0, backoff_base_s=0.01
            ),
            checkpoint_base=base,
            heartbeat_every_s=0.0,
        )
        assert result.failed_shards == 1

        supervisor_beat = read_heartbeat(tmp_path / "run.ckpt.heartbeat.json")
        assert supervisor_beat.status == "done"
        assert supervisor_beat.failed_shards == 1
        shard0 = read_heartbeat(tmp_path / "run.ckpt.shard0.heartbeat.json")
        assert shard0.status == "failed"

        payload = heartbeat_collector(base)()
        validate_exposition(payload)
        assert "repro_shards_quarantined 1" in payload
        assert 'repro_heartbeat_up{role="shard",shard="0"} 0' in payload


class TestProfileArtifacts:
    def test_per_shard_profiles_written(self, tmp_path):
        profile_dir = tmp_path / "prof"
        run_supervised_ensemble(
            voter(1), wrong_consensus_configuration(64, 1), 5000,
            make_rng(5), 4,
            supervisor=SupervisorConfig(workers=2, shards=2),
            checkpoint_base=tmp_path / "run.ckpt",
            profile_dir=profile_dir,
        )
        import pstats

        for shard in range(2):
            target = profile_dir / f"shard{shard}.prof"
            assert target.exists()
            assert pstats.Stats(str(target)).total_calls >= 1
