"""Tests for profiling hooks: cProfile capture and speedscope export."""

from __future__ import annotations

import json
import pstats

import pytest

from repro.telemetry import MetricsRecorder, span
from repro.telemetry.profiling import (
    maybe_cprofile,
    spans_to_speedscope,
    write_speedscope,
)
from repro.telemetry.spans import SpanAggregate


def aggregate(wall_s: float, calls: int = 1) -> SpanAggregate:
    agg = SpanAggregate()
    agg.calls = calls
    agg.wall_s = wall_s
    return agg


class TestSpansToSpeedscope:
    def test_self_time_weights(self):
        # parent 5s with children 3s + 1s => parent self time 1s.
        spans = {
            "parent": aggregate(5.0),
            "parent/child_a": aggregate(3.0),
            "parent/child_b": aggregate(1.0),
        }
        document = spans_to_speedscope(spans)
        profile = document["profiles"][0]
        frames = [f["name"] for f in document["shared"]["frames"]]
        stacks = [
            [frames[i] for i in sample] for sample in profile["samples"]
        ]
        by_stack = dict(zip(map(tuple, stacks), profile["weights"]))
        assert by_stack[("parent",)] == pytest.approx(1.0)
        assert by_stack[("parent", "child_a")] == pytest.approx(3.0)
        assert by_stack[("parent", "child_b")] == pytest.approx(1.0)
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
        assert profile["type"] == "sampled" and profile["unit"] == "seconds"

    def test_only_direct_children_subtract(self):
        # A grandchild's wall must not be double-subtracted from the root.
        spans = {
            "a": aggregate(10.0),
            "a/b": aggregate(6.0),
            "a/b/c": aggregate(2.0),
        }
        profile = spans_to_speedscope(spans)["profiles"][0]
        # a self = 10 - 6 (only a/b counts, not a/b/c); a/b self = 6 - 2;
        # a/b/c self = 2.
        assert sorted(profile["weights"]) == pytest.approx([2.0, 4.0, 4.0])

    def test_zero_self_time_paths_dropped(self):
        spans = {"outer": aggregate(2.0), "outer/inner": aggregate(2.0)}
        profile = spans_to_speedscope(spans)["profiles"][0]
        assert len(profile["samples"]) == 1  # outer's self time is 0

    def test_empty_spans_still_a_valid_document(self):
        document = spans_to_speedscope({})
        assert document["profiles"][0]["samples"] == []
        assert document["profiles"][0]["endValue"] == 0

    def test_from_a_live_recorder(self):
        recorder = MetricsRecorder()
        with span(recorder, "stage"):
            with span(recorder, "inner"):
                pass
        document = spans_to_speedscope(recorder.metrics().spans)
        names = {f["name"] for f in document["shared"]["frames"]}
        assert {"stage", "inner"} <= names


class TestWriteSpeedscope:
    def test_atomic_json_on_disk(self, tmp_path):
        target = tmp_path / "spans.speedscope.json"
        document = spans_to_speedscope({"s": aggregate(1.0)})
        assert write_speedscope(target, document) == target
        assert not (tmp_path / "spans.speedscope.json.tmp").exists()
        assert json.loads(target.read_text()) == document


class TestMaybeCprofile:
    def test_none_is_a_noop(self):
        with maybe_cprofile(None) as profiler:
            assert profiler is None

    def test_profile_dumped_and_loadable(self, tmp_path):
        target = tmp_path / "deep" / "run.prof"  # parents created on demand
        with maybe_cprofile(target):
            sum(range(1000))
        stats = pstats.Stats(str(target))
        assert stats.total_calls >= 1

    def test_profile_dumped_even_on_raise(self, tmp_path):
        target = tmp_path / "failed.prof"
        with pytest.raises(RuntimeError):
            with maybe_cprofile(target):
                raise RuntimeError("the interesting attempt")
        assert target.exists()
