"""Tests for the Prometheus exposition renderer, validator, and transports."""

from __future__ import annotations

import pathlib
import urllib.error
import urllib.request

import pytest

from repro.telemetry import MetricsRecorder, span
from repro.telemetry.heartbeat import Heartbeat
from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    ExpositionError,
    MetricFamily,
    MetricsServer,
    escape_help,
    escape_label_value,
    format_value,
    heartbeat_families,
    metrics_families,
    render_exposition,
    render_metrics,
    validate_exposition,
    write_textfile,
)

GOLDEN = pathlib.Path(__file__).parent / "data" / "metrics_golden.prom"


def golden_heartbeats() -> list:
    """The fixed heartbeats the golden file was rendered from."""
    return [
        Heartbeat(
            role="supervisor", status="running", pid=101,
            updated_at=1700000000.0, round=0, max_rounds=5000,
            replicas=8, replicas_done=3, shards=4, retries=2, timeouts=1,
            failed_shards=1, rss_bytes=104857600, peak_rss_bytes=209715200,
            cpu_s=12.5,
        ),
        Heartbeat(
            role="shard", status="running", pid=102,
            updated_at=1700000001.0, round=120, max_rounds=5000,
            replicas=2, replicas_done=1, rounds_per_second=250.0, shard=0,
            attempt=1, rss_bytes=52428800, peak_rss_bytes=52428800,
            cpu_s=3.25,
        ),
        Heartbeat(
            role="shard", status="failed", pid=103,
            updated_at=1700000002.0, round=10, max_rounds=5000,
            replicas=2, replicas_done=0, shard=1, attempt=3,
            rss_bytes=41943040, cpu_s=0.5,
        ),
    ]


class TestValueAndEscapeFormatting:
    def test_integral_floats_render_without_point(self):
        assert format_value(3.0) == "3"
        assert format_value(-7.0) == "-7"
        assert format_value(0.0) == "0"

    def test_non_integral_and_special_values(self):
        assert format_value(2.5) == "2.5"
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"

    def test_huge_integral_floats_keep_float_form(self):
        # Past 1e15 an int cast would pretend to precision floats lack.
        assert "e" in format_value(1e16) or "." in format_value(1e16)

    def test_label_value_escapes(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_help_escapes_keep_quotes_literal(self):
        assert escape_help('say "hi"\n\\') == 'say "hi"\\n\\\\'


class TestMetricFamily:
    def test_rejects_illegal_metric_name(self):
        with pytest.raises(ValueError, match="illegal metric name"):
            MetricFamily("1bad", "gauge", "nope")

    def test_rejects_illegal_type(self):
        with pytest.raises(ValueError, match="illegal metric type"):
            MetricFamily("ok_name", "gouge", "typo")

    def test_counter_must_end_in_total(self):
        with pytest.raises(ValueError, match="_total"):
            MetricFamily("repro_rounds", "counter", "missing suffix")

    def test_rejects_illegal_label_name(self):
        with pytest.raises(ValueError, match="illegal label name"):
            MetricFamily(
                "ok_name", "gauge", "bad label",
                [((("0bad", "x"),), 1.0)],
            )


class TestRenderAndValidateRoundTrip:
    def test_rendered_output_validates(self):
        families = [
            MetricFamily(
                "demo_total", "counter", "with \\ and\nnewline",
                [((("k", 'v"\\\n'),), 1.0), ((("k", "plain"),), 2.5)],
            ),
            MetricFamily("demo_gauge", "gauge", "g", [((), float("nan"))]),
        ]
        payload = render_exposition(families)
        stats = validate_exposition(payload)
        assert stats == {"families": 2, "samples": 3}

    def test_golden_file(self):
        # Byte-for-byte: the rendered exposition of a fixed heartbeat set
        # must equal the committed golden payload (and validate).
        payload = render_exposition(heartbeat_families(golden_heartbeats()))
        assert payload == GOLDEN.read_text()
        validate_exposition(payload)

    def test_render_metrics_fallback_is_valid(self):
        payload = render_metrics()
        assert "repro_up 1" in payload
        validate_exposition(payload)

    def test_live_recorder_snapshot_renders(self):
        recorder = MetricsRecorder()
        with span(recorder, "stage") as timing:
            timing.incr("items", 3)
        recorder.round_recorded(1, 10)
        recorder.round_recorded(2, 12)
        payload = render_metrics(recorder.metrics())
        validate_exposition(payload)
        assert "repro_rounds_total 2" in payload
        assert 'repro_span_events_total{path="stage",counter="items"} 3' in payload

    def test_span_families_sorted_and_typed(self):
        recorder = MetricsRecorder()
        with span(recorder, "b"):
            pass
        with span(recorder, "a"):
            pass
        families = {f.name: f for f in metrics_families(recorder.metrics())}
        calls = families["repro_span_calls_total"]
        assert calls.kind == "counter"
        assert [dict(labels)["path"] for labels, _ in calls.samples] == ["a", "b"]

    def test_non_finite_gauges_skipped(self):
        recorder = MetricsRecorder()
        names = {f.name for f in metrics_families(recorder.metrics())}
        # No rounds observed: final_count/mean_abs_drift are NaN and must
        # be absent rather than rendered as NaN gauges.
        assert "repro_run_final_count" not in names
        assert "repro_run_mean_abs_drift" not in names


class TestHeartbeatFamilies:
    def test_empty_input_renders_nothing(self):
        assert heartbeat_families([]) == []

    def test_quarantined_gauge_comes_from_supervisor(self):
        families = {f.name: f for f in heartbeat_families(golden_heartbeats())}
        assert families["repro_shards_quarantined"].samples == [((), 1.0)]
        assert families["repro_shard_retries_total"].kind == "counter"

    def test_shard_labels(self):
        families = {f.name: f for f in heartbeat_families(golden_heartbeats())}
        up = families["repro_heartbeat_up"]
        labelled = {tuple(labels): value for labels, value in up.samples}
        assert labelled[(("role", "supervisor"),)] == 1.0
        assert labelled[(("role", "shard"), ("shard", "1"))] == 0.0


class TestValidatorRejections:
    def assert_rejects(self, payload: str, match: str):
        with pytest.raises(ExpositionError, match=match):
            validate_exposition(payload)

    def test_empty_and_missing_trailing_newline(self):
        self.assert_rejects("", "empty payload")
        self.assert_rejects("# HELP a b\n# TYPE a gauge\na 1", "end with a newline")

    def test_sample_without_declaration(self):
        self.assert_rejects("orphan 1\n", "no preceding HELP/TYPE")

    def test_type_before_help(self):
        self.assert_rejects("# TYPE a gauge\n# HELP a h\na 1\n", "precede|without")

    def test_duplicate_help(self):
        self.assert_rejects(
            "# HELP a h\n# HELP a h\n# TYPE a gauge\na 1\n", "duplicate HELP"
        )

    def test_non_contiguous_family(self):
        self.assert_rejects(
            "# HELP a h\n# TYPE a gauge\na 1\n"
            "# HELP b h\n# TYPE b gauge\nb 1\na 2\n",
            "contiguous",
        )

    def test_counter_without_total_suffix(self):
        self.assert_rejects("# HELP a h\n# TYPE a counter\na 1\n", "_total")

    def test_bad_escape_in_label_value(self):
        self.assert_rejects(
            '# HELP a h\n# TYPE a gauge\na{x="\\t"} 1\n', "bad escape"
        )

    def test_duplicate_label_name(self):
        self.assert_rejects(
            '# HELP a h\n# TYPE a gauge\na{x="1",x="2"} 1\n', "duplicate label"
        )

    def test_unparsable_value_and_timestamp(self):
        self.assert_rejects("# HELP a h\n# TYPE a gauge\na one\n", "unparsable value")
        self.assert_rejects(
            "# HELP a h\n# TYPE a gauge\na 1 12.5\n", "not an integer"
        )

    def test_histogram_suffixes_accepted(self):
        payload = (
            "# HELP lat h\n# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 2\nlat_bucket{le="+Inf"} 3\n'
            "lat_sum 0.4\nlat_count 3\n"
        )
        stats = validate_exposition(payload)
        assert stats == {"families": 1, "samples": 4}

    def test_suffix_resolution_requires_histogram_type(self):
        self.assert_rejects(
            "# HELP lat h\n# TYPE lat gauge\nlat_sum 1\n",
            "no preceding HELP/TYPE",
        )


class TestTransports:
    def test_server_serves_valid_payload(self):
        calls = []

        def collect() -> str:
            calls.append(1)
            return render_metrics(heartbeats=golden_heartbeats())

        with MetricsServer(collect, port=0) as server:
            assert server.port != 0
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                payload = response.read().decode("utf-8")
        validate_exposition(payload)
        assert "repro_shards_quarantined 1" in payload
        assert calls  # the collector ran per scrape, not at startup

    def test_server_404_off_path(self):
        with MetricsServer(lambda: "repro_up 1\n", port=0) as server:
            bad = server.url.replace("/metrics", "/other")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=5)
            assert excinfo.value.code == 404

    def test_server_500_on_collector_error(self):
        def explode() -> str:
            raise RuntimeError("collector broke")

        with MetricsServer(explode, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url, timeout=5)
            assert excinfo.value.code == 500

    def test_write_textfile_atomic(self, tmp_path):
        target = tmp_path / "metrics.prom"
        payload = render_metrics(heartbeats=golden_heartbeats())
        assert write_textfile(target, payload) == target
        assert target.read_text() == payload
        assert not (tmp_path / "metrics.prom.tmp").exists()
        # Overwrite is equally atomic: no partial state between payloads.
        write_textfile(target, "repro_up 1\n")
        assert target.read_text() == "repro_up 1\n"
