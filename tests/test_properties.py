"""Cross-module property tests: invariants over *random* protocols.

Theorem 1 quantifies over every protocol, so the pipeline must be correct
on arbitrary response tables, not just the named dynamics.  These
hypothesis suites tie several modules together per example: random table
-> bias -> roots -> certificate -> exact chain -> engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bias import bias_value, expected_next_count
from repro.core.lower_bound import lower_bound_certificate
from repro.core.mean_field import mean_field_map
from repro.core.roots import is_zero_bias
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count, step_counts_batch
from repro.markov.exact import transition_row
from repro.protocols import random_protocol

protocol_strategy = st.builds(
    lambda ell, seed, oblivious, symmetric: random_protocol(
        ell,
        np.random.default_rng(seed),
        solving=True,
        oblivious=oblivious,
        symmetric=symmetric,
    ),
    st.integers(min_value=1, max_value=6),
    st.integers(0, 2**32 - 1),
    st.booleans(),
    st.booleans(),
)


class TestBiasChainConsistency:
    @given(protocol_strategy, st.sampled_from([0, 1]), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_exact_row_mean_is_the_drift(self, protocol, z, state_seed):
        n = 37
        low, high = Configuration.count_bounds(n, z)
        x = low + state_seed % (high - low + 1)
        row = transition_row(protocol, n, z, x)
        mean = float(row @ np.arange(n + 1))
        assert mean == pytest.approx(
            float(expected_next_count(protocol, n, z, x)), abs=1e-9
        )

    @given(protocol_strategy, st.sampled_from([0, 1]))
    @settings(max_examples=30, deadline=None)
    def test_row_support_respects_source(self, protocol, z):
        n = 23
        low, high = Configuration.count_bounds(n, z)
        x = (low + high) // 2
        row = transition_row(protocol, n, z, x)
        if z == 1:
            assert row[0] == 0.0  # the source keeps X >= 1
        else:
            assert row[n] == 0.0

    @given(protocol_strategy)
    @settings(max_examples=30, deadline=None)
    def test_mean_field_map_stays_in_unit_interval(self, protocol):
        grid = np.linspace(0.0, 1.0, 33)
        image = np.asarray(mean_field_map(protocol, grid))
        assert np.all(image >= -1e-12) and np.all(image <= 1 + 1e-12)


class TestCertificateProperties:
    @given(protocol_strategy)
    @settings(max_examples=40, deadline=None)
    def test_certificate_sign_consistency(self, protocol):
        """The drift at the witness start opposes the escape direction."""
        certificate = lower_bound_certificate(protocol)
        n = 1009
        witness = certificate.witness_configuration(n)
        drift = float(expected_next_count(protocol, n, witness.z, witness.x0))
        if is_zero_bias(protocol):
            assert abs(drift - witness.x0) <= 1.0  # martingale up to source pull
        elif certificate.escape_is_upward:
            assert drift <= witness.x0 + 1.0
        else:
            assert drift >= witness.x0 - 1.0

    @given(protocol_strategy)
    @settings(max_examples=40, deadline=None)
    def test_witness_is_not_escaped_at_start(self, protocol):
        certificate = lower_bound_certificate(protocol)
        for n in (512, 2048):
            if (certificate.a3 - certificate.a1) * n < 4:
                # Below integer resolution the interval has no interior at
                # this n ("for n large enough" has not kicked in yet).
                continue
            witness = certificate.witness_configuration(n)
            assert not certificate.has_escaped(n, witness.x0)

    @given(protocol_strategy)
    @settings(max_examples=40, deadline=None)
    def test_bias_sign_constant_on_certified_interval(self, protocol):
        certificate = lower_bound_certificate(protocol)
        if is_zero_bias(protocol):
            return
        grid = np.linspace(certificate.a1 + 1e-6, certificate.a3 - 1e-6, 33)
        values = np.asarray(bias_value(protocol, grid))
        if "case 1" in certificate.case:
            assert np.all(values < 1e-9)
        else:
            assert np.all(values > -1e-9)


class TestEngineProperties:
    @given(protocol_strategy, st.sampled_from([0, 1]), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_counts_stay_admissible(self, protocol, z, seed):
        n = 61
        rng = np.random.default_rng(seed)
        low, high = Configuration.count_bounds(n, z)
        x = (low + high) // 2
        for _ in range(20):
            x = step_count(protocol, n, z, x, rng)
            assert low <= x <= high

    @given(protocol_strategy, st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_batch_and_scalar_share_support(self, protocol, seed):
        n, z = 41, 1
        rng = np.random.default_rng(seed)
        batch = step_counts_batch(protocol, n, z, np.full(64, 21), rng)
        assert batch.min() >= 1 and batch.max() <= n

    @given(protocol_strategy)
    @settings(max_examples=25, deadline=None)
    def test_consensus_absorbing_for_solving_protocols(self, protocol):
        rng = np.random.default_rng(0)
        assert step_count(protocol, 50, 1, 50, rng) == 50
        assert step_count(protocol, 50, 0, 0, rng) == 0
