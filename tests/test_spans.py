"""Tests for the span timer API (repro.telemetry.spans)."""

from __future__ import annotations

import json

import pytest

from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate, simulate_ensemble
from repro.protocols import voter
from repro.telemetry import (
    NULL_RECORDER,
    NULL_SPAN,
    JsonlTraceWriter,
    MetricsRecorder,
    Recorder,
    SpanRecord,
    TeeRecorder,
    current_span,
    span,
)


class TestSpanBasics:
    def test_disabled_recorder_gets_null_span(self):
        assert span(NULL_RECORDER, "anything") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as s:
            s.incr("steps")
            s.incr("steps", 5)
        # no state to assert — the contract is simply "never raises"

    def test_records_name_path_and_wall_clock(self):
        recorder = MetricsRecorder()
        with span(recorder, "outer"):
            pass
        spans = recorder.metrics().spans
        assert list(spans) == ["outer"]
        agg = spans["outer"]
        assert agg.calls == 1
        assert agg.wall_s >= 0.0

    def test_nested_spans_build_slash_paths(self):
        recorder = MetricsRecorder()
        with span(recorder, "outer"):
            with span(recorder, "inner"):
                pass
            with span(recorder, "inner"):
                pass
        spans = recorder.metrics().spans
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer/inner"].calls == 2
        assert spans["outer"].calls == 1

    def test_counters_aggregate_across_calls(self):
        recorder = MetricsRecorder()
        for _ in range(3):
            with span(recorder, "work") as s:
                s.incr("items", 2)
        agg = recorder.metrics().spans["work"]
        assert agg.calls == 3
        assert agg.counters["items"] == 6

    def test_exception_still_closes_span(self):
        recorder = MetricsRecorder()
        with pytest.raises(RuntimeError):
            with span(recorder, "doomed"):
                raise RuntimeError("boom")
        assert recorder.metrics().spans["doomed"].calls == 1
        # the stack is clean: a new span is top-level again
        with span(recorder, "after"):
            pass
        assert "after" in recorder.metrics().spans

    def test_current_span_returns_innermost_open_span(self):
        recorder = MetricsRecorder()
        assert current_span(recorder) is NULL_SPAN
        with span(recorder, "outer"):
            with span(recorder, "inner"):
                current_span(recorder).incr("hits")
        assert recorder.metrics().spans["outer/inner"].counters["hits"] == 1

    def test_current_span_on_disabled_recorder(self):
        assert current_span(NULL_RECORDER) is NULL_SPAN

    def test_tee_forwards_span_records(self, tmp_path):
        from repro.dynamics.rng import make_rng
        from repro.telemetry.recorder import run_provenance

        metrics = MetricsRecorder()
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path)
        tee = TeeRecorder([metrics, writer])
        tee.run_started(run_provenance("x", voter(1), make_rng(0)))
        with span(tee, "stage"):
            pass
        tee.run_finished({})
        writer.close()
        assert "stage" in metrics.metrics().spans
        kinds = [json.loads(line)["kind"] for line in path.read_text().splitlines()]
        assert "span" in kinds

    def test_base_recorder_hook_is_a_noop(self):
        rec = Recorder()
        rec.enabled = True
        rec.span_recorded(
            SpanRecord(name="x", path="x", depth=0, wall_s=0.0, counters={})
        )


class TestWiredSpans:
    def test_simulate_emits_simulate_span_with_rounds(self):
        recorder = MetricsRecorder()
        config = wrong_consensus_configuration(64, z=1)
        result = simulate(voter(1), config, 50_000, make_rng(0), recorder=recorder)
        spans = recorder.metrics().spans
        assert spans["simulate"].counters["rounds"] == result.rounds
        assert spans["simulate"].counters["steps"] == result.rounds
        assert spans["simulate"].wall_s <= recorder.metrics().wall_clock_s

    def test_ensemble_span_counts_batch_steps(self):
        recorder = MetricsRecorder()
        config = wrong_consensus_configuration(64, z=1)
        simulate_ensemble(
            voter(1), config, 10_000, make_rng(1), replicas=4, recorder=recorder
        )
        spans = recorder.metrics().spans
        assert "ensemble" in spans
        batch = spans["ensemble"].counters["batch_steps"]
        replica = spans["ensemble"].counters["replica_steps"]
        # converged replicas drop out of the batch, so the average batch
        # width lies between 1 and the full replica count
        assert batch <= replica <= 4 * batch

    def test_span_records_in_trace_are_schema_valid(self, tmp_path):
        from repro.telemetry import validate_trace

        path = tmp_path / "run.jsonl"
        writer = JsonlTraceWriter(path)
        config = wrong_consensus_configuration(64, z=1)
        simulate(voter(1), config, 50_000, make_rng(0), recorder=writer)
        writer.close()
        records = validate_trace(path)
        span_records = [r for r in records if r.get("kind") == "span"]
        assert any(r["path"] == "simulate" for r in span_records)
        assert all(r["wall_s"] >= 0.0 for r in span_records)

    def test_disabled_recorder_leaves_no_span_state(self):
        config = wrong_consensus_configuration(64, z=1)
        simulate(voter(1), config, 50_000, make_rng(0), recorder=NULL_RECORDER)
        assert not hasattr(NULL_RECORDER, "_span_stack") or not getattr(
            NULL_RECORDER, "_span_stack"
        )
