"""Tests for the run-telemetry layer (recorders, JSONL traces, schema)."""

from __future__ import annotations

import importlib.util
import io
import json
import pathlib

import numpy as np
import pytest

from repro.analysis.ensemble import convergence_ensemble
from repro.core.lower_bound import lower_bound_certificate
from repro.dynamics.config import Configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import (
    escape_time,
    escape_time_ensemble,
    simulate,
    simulate_ensemble,
    time_to_leave_consensus,
)
from repro.dynamics.sequential import simulate_sequential
from repro.protocols import minority, table_protocol, voter
from repro.telemetry import (
    NULL_RECORDER,
    JsonlTraceWriter,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    TeeRecorder,
    compose_recorders,
    protocol_fingerprint,
    read_trace,
    rng_provenance,
    trace_counts,
    trace_to_series,
    validate_trace,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestNullRecorder:
    def test_disabled_and_noop(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        assert recorder.run_started(None) is None
        assert recorder.round_recorded(1, 10) is None
        assert recorder.run_finished({}) is None

    def test_default_recorder_matches_explicit_null(self):
        config = Configuration(n=150, z=1, x0=75)
        a = simulate(voter(1), config, 50_000, make_rng(12), record=True)
        b = simulate(
            voter(1), config, 50_000, make_rng(12), record=True,
            recorder=NULL_RECORDER,
        )
        assert a.rounds == b.rounds
        np.testing.assert_array_equal(a.trajectory, b.trajectory)

    def test_enabled_recorder_does_not_perturb_the_run(self):
        config = Configuration(n=150, z=1, x0=75)
        a = simulate(voter(1), config, 50_000, make_rng(12), record=True)
        b = simulate(
            voter(1), config, 50_000, make_rng(12), record=True,
            recorder=JsonlTraceWriter(io.StringIO()),
        )
        assert a.rounds == b.rounds
        np.testing.assert_array_equal(a.trajectory, b.trajectory)


class TestMetricsRecorder:
    def test_counts_rounds_and_summary(self):
        config = Configuration(n=200, z=1, x0=1)
        recorder = MetricsRecorder()
        result = simulate(voter(1), config, 50_000, make_rng(3), recorder=recorder)
        m = recorder.metrics()
        assert m.rounds == result.rounds
        assert m.final_count == result.final_count
        assert m.wall_clock_s > 0
        assert m.rounds_per_second > 0
        assert m.summary == {
            "converged": True, "rounds": result.rounds,
            "final_count": result.final_count,
        }
        assert m.provenance.runner == "simulate"
        assert m.provenance.params["n"] == 200

    def test_mean_abs_drift_matches_trajectory(self):
        config = Configuration(n=200, z=1, x0=100)
        recorder = MetricsRecorder()
        result = simulate(
            voter(1), config, 50_000, make_rng(8), record=True, recorder=recorder
        )
        expected = np.abs(np.diff(result.trajectory)).mean()
        assert recorder.metrics().mean_abs_drift == pytest.approx(expected)

    def test_empty_run_yields_nan_drift(self):
        recorder = MetricsRecorder()
        # Already-converged start: zero rounds executed.
        simulate(voter(1), Configuration(n=50, z=1, x0=50), 10, make_rng(0),
                 recorder=recorder)
        m = recorder.metrics()
        assert m.rounds == 0
        assert np.isnan(m.mean_abs_drift)

    def test_keep_wall_times(self):
        recorder = MetricsRecorder(keep_wall_times=True)
        simulate(voter(1), Configuration(n=100, z=1, x0=50), 50_000, make_rng(4),
                 recorder=recorder)
        assert len(recorder.wall_times) == recorder.metrics().rounds
        assert all(w >= 0 for w in recorder.wall_times)


class TestCompose:
    def test_zero_recorders_is_null(self):
        assert compose_recorders() is NULL_RECORDER
        assert compose_recorders(None, NullRecorder()) is NULL_RECORDER

    def test_single_recorder_passthrough(self):
        metrics = MetricsRecorder()
        assert compose_recorders(None, metrics) is metrics

    def test_tee_fans_out(self):
        a, b = MetricsRecorder(), MetricsRecorder()
        tee = compose_recorders(a, b)
        assert isinstance(tee, TeeRecorder)
        simulate(voter(1), Configuration(n=100, z=1, x0=1), 50_000, make_rng(2),
                 recorder=tee)
        assert a.metrics().rounds == b.metrics().rounds > 0


class TestProvenance:
    def test_fingerprint_ignores_name(self):
        a = table_protocol([0.0, 0.5, 1.0], name="one")
        b = table_protocol([0.0, 0.5, 1.0], name="two")
        assert protocol_fingerprint(a) == protocol_fingerprint(b)

    def test_fingerprint_sees_table_changes(self):
        a = table_protocol([0.0, 0.5, 1.0])
        b = table_protocol([0.0, 0.6, 1.0])
        assert protocol_fingerprint(a) != protocol_fingerprint(b)

    def test_rng_provenance_is_seed_deterministic(self):
        assert rng_provenance(make_rng(5)) == rng_provenance(make_rng(5))
        assert rng_provenance(make_rng(5)) != rng_provenance(make_rng(6))
        assert rng_provenance(make_rng(5))["bit_generator"] == "PCG64"


class TestJsonlRoundTrip:
    def test_simulate_trace_matches_run_result(self, tmp_path):
        path = tmp_path / "run.jsonl"
        config = Configuration(n=200, z=1, x0=1)
        with JsonlTraceWriter(path) as writer:
            result = simulate(
                voter(1), config, 50_000, make_rng(3), record=True, recorder=writer
            )
        records = validate_trace(path)
        end = records[-1]
        assert end["converged"] is True
        assert end["rounds"] == result.rounds
        assert end["rounds_recorded"] == result.rounds
        assert end["wall_clock_s"] > 0
        np.testing.assert_array_equal(trace_counts(records), result.trajectory)

    def test_drift_fields_telescope(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTraceWriter(path) as writer:
            simulate(voter(1), Configuration(n=100, z=1, x0=50), 50_000,
                     make_rng(6), recorder=writer)
        records = read_trace(path)
        counts = trace_counts(records)
        drifts = [r["drift"] for r in records if r["kind"] == "round"]
        np.testing.assert_array_equal(np.diff(counts), drifts)

    def test_censored_run_records_budget_rounds(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTraceWriter(path) as writer:
            result = simulate(minority(3), Configuration(n=500, z=1, x0=1), 20,
                              make_rng(0), recorder=writer)
        records = validate_trace(path)
        assert result.converged is False
        assert records[-1]["rounds"] is None
        assert records[-1]["rounds_recorded"] == 20

    def test_ensemble_trace(self, tmp_path):
        path = tmp_path / "ens.jsonl"
        config = Configuration(n=150, z=1, x0=75)
        with JsonlTraceWriter(path) as writer:
            times = simulate_ensemble(minority(3), config, 200, make_rng(5), 20,
                                      recorder=writer)
        records = validate_trace(path)
        end = records[-1]
        censored = int(np.isnan(times).sum())
        assert end["converged"] == 20 - censored
        assert end["censored"] == censored
        rounds = [r for r in records if r["kind"] == "round"]
        assert rounds[0]["active"] <= 20
        assert all("newly_converged" in r for r in rounds)

    def test_sequential_trace(self, tmp_path):
        path = tmp_path / "seq.jsonl"
        config = Configuration(n=40, z=1, x0=20)
        with JsonlTraceWriter(path) as writer:
            result = simulate_sequential(voter(1), config, 10**7, make_rng(3),
                                         recorder=writer)
        records = validate_trace(path)
        end = records[-1]
        assert end["converged"] is True
        assert end["activations"] == result.activations
        assert end["parallel_rounds"] == pytest.approx(result.parallel_rounds)
        rounds = [r for r in records if r["kind"] == "round"]
        assert all(r["holding"] >= 1 for r in rounds)
        # One record per move: |count step| is exactly 1 and t increases.
        assert all(abs(r["drift"]) == 1 for r in rounds)

    def test_escape_time_trace(self, tmp_path):
        path = tmp_path / "esc.jsonl"
        protocol = minority(3)
        certificate = lower_bound_certificate(protocol)
        with JsonlTraceWriter(path) as writer:
            escaped_at = escape_time(protocol, certificate, 256, 500, make_rng(1),
                                     recorder=writer)
        records = validate_trace(path)
        start, end = records[0], records[-1]
        assert start["runner"] == "escape_time"
        assert "threshold" in start["params"]
        assert end["escaped"] is (escaped_at is not None)

    def test_escape_time_ensemble_trace(self, tmp_path):
        path = tmp_path / "esce.jsonl"
        protocol = minority(3)
        certificate = lower_bound_certificate(protocol)
        with JsonlTraceWriter(path) as writer:
            times = escape_time_ensemble(protocol, certificate, 256, 200,
                                         make_rng(1), 8, recorder=writer)
        records = validate_trace(path)
        assert records[-1]["escaped"] + records[-1]["censored"] == 8
        assert records[-1]["censored"] == int(np.isnan(times).sum())

    def test_time_to_leave_consensus_trace(self, tmp_path):
        path = tmp_path / "leave.jsonl"
        violator = table_protocol([0.3, 1.0], name="violator")
        with JsonlTraceWriter(path) as writer:
            left_at = time_to_leave_consensus(violator, 64, 0, 1000, make_rng(2),
                                              recorder=writer)
        records = validate_trace(path)
        assert records[-1]["left"] is True
        assert records[-1]["rounds"] == left_at

    def test_convergence_ensemble_forwards_recorder(self, tmp_path):
        path = tmp_path / "conv.jsonl"
        config = Configuration(n=150, z=1, x0=75)
        with JsonlTraceWriter(path) as writer:
            stats = convergence_ensemble(minority(3), config, 200, make_rng(5), 10,
                                         recorder=writer)
        records = validate_trace(path)
        end = next(r for r in records if r["kind"] == "run_end")
        assert end["censored"] == stats.censored
        # The wrapping spans trail the run_end (they close after the runner).
        trailing = [r["path"] for r in records if r["kind"] == "span"]
        assert "convergence_ensemble" in trailing
        assert "convergence_ensemble/ensemble" in trailing

    def test_trace_to_series(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTraceWriter(path) as writer:
            result = simulate(voter(1), Configuration(n=100, z=1, x0=1), 50_000,
                              make_rng(3), record=True, recorder=writer)
        series = trace_to_series(path)
        assert "voter" in series.name
        np.testing.assert_array_equal(series.y, result.trajectory.astype(float))
        np.testing.assert_array_equal(series.x, np.arange(len(result.trajectory)))

    def test_writer_into_open_file_is_not_closed(self, tmp_path):
        buffer = io.StringIO()
        with JsonlTraceWriter(buffer) as writer:
            simulate(voter(1), Configuration(n=50, z=1, x0=25), 50_000, make_rng(1),
                     recorder=writer)
        assert not buffer.closed
        assert buffer.getvalue().count("\n") == writer.records_written


class TestValidateTrace:
    def _trace_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(path, include_timings=False) as writer:
            simulate(voter(1), Configuration(n=60, z=1, x0=30), 50_000, make_rng(2),
                     recorder=writer)
        return path, path.read_text().splitlines()

    def test_accepts_valid_trace(self, tmp_path):
        path, _ = self._trace_lines(tmp_path)
        assert validate_trace(path)[0]["kind"] == "run_start"

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            validate_trace(path)

    def test_rejects_missing_run_end(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="run_end"):
            validate_trace(path)

    def test_rejects_wrong_schema_version(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        start = json.loads(lines[0])
        start["schema"] = 99
        path.write_text("\n".join([json.dumps(start)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="schema"):
            validate_trace(path)

    def test_rejects_round_count_mismatch(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        # Drop one interior round record: run_end's count no longer matches.
        path.write_text("\n".join(lines[:1] + lines[2:]) + "\n")
        with pytest.raises(ValueError, match="rounds"):
            validate_trace(path)

    def test_rejects_non_json_line(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        path.write_text("\n".join(lines[:1] + ["not json"] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_trace(path)


class TestTraceEdgeCases:
    """Malformed inputs the readers must reject with clear errors, not crash."""

    def _trace_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(path, include_timings=False) as writer:
            simulate(voter(1), Configuration(n=60, z=1, x0=30), 50_000, make_rng(2),
                     recorder=writer)
        return path, path.read_text().splitlines()

    def test_truncated_mid_record(self, tmp_path):
        # A crash mid-write leaves a partial final line.
        path, lines = self._trace_lines(tmp_path)
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_trace(path)

    def test_out_of_order_round_indices(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        rounds = [i for i, l in enumerate(lines) if json.loads(l).get("kind") == "round"]
        assert len(rounds) >= 2
        i, j = rounds[0], rounds[1]
        lines[i], lines[j] = lines[j], lines[i]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="goes back in time"):
            validate_trace(path)

    def test_nan_count_rejected(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        idx = next(i for i, l in enumerate(lines) if json.loads(l).get("kind") == "round")
        record = json.loads(lines[idx])
        record["count"] = float("nan")
        lines[idx] = json.dumps(record)  # json emits the non-standard literal NaN
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="finite"):
            validate_trace(path)

    def test_inf_drift_rejected(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        idx = next(i for i, l in enumerate(lines) if json.loads(l).get("kind") == "round")
        record = json.loads(lines[idx])
        record["drift"] = float("inf")
        lines[idx] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="finite"):
            validate_trace(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        lines.insert(1, json.dumps({"kind": "mystery"}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="unknown kind"):
            validate_trace(path)

    def test_duplicate_run_end_rejected(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        end = next(l for l in lines if json.loads(l).get("kind") == "run_end")
        path.write_text("\n".join(lines + [end]) + "\n")
        with pytest.raises(ValueError, match="run_end"):
            validate_trace(path)

    def test_round_after_run_end_rejected(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        rnd = next(l for l in lines if json.loads(l).get("kind") == "round")
        record = json.loads(rnd)
        record["t"] = record["t"] + 10_000
        path.write_text("\n".join(lines + [json.dumps(record)]) + "\n")
        with pytest.raises(ValueError, match="after run_end|rounds"):
            validate_trace(path)

    def test_bad_span_record_rejected(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        lines.insert(1, json.dumps({"kind": "span", "name": "", "path": "x"}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="span"):
            validate_trace(path)

    def test_trace_to_series_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            trace_to_series(path)

    def test_trace_to_series_start_only_uses_x0(self, tmp_path):
        # run_start carries x0, so even a rounds-free trace yields a
        # one-point series rather than an error.
        path = tmp_path / "start_only.jsonl"
        _, lines = self._trace_lines(tmp_path)
        path.write_text(lines[0] + "\n")
        series = trace_to_series(path)
        assert list(series.y) == [30.0]

    def test_trace_to_series_no_counts_at_all(self, tmp_path):
        path = tmp_path / "countless.jsonl"
        path.write_text(json.dumps({"kind": "span", "name": "x", "path": "x"}) + "\n")
        with pytest.raises(ValueError, match="no counts"):
            trace_to_series(path)

    def test_trace_to_series_non_finite_counts(self, tmp_path):
        path, lines = self._trace_lines(tmp_path)
        idx = next(i for i, l in enumerate(lines) if json.loads(l).get("kind") == "round")
        record = json.loads(lines[idx])
        record["count"] = float("nan")
        lines[idx] = json.dumps(record)
        out = tmp_path / "nan.jsonl"
        out.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="finite"):
            trace_to_series(out)


class TestTraceSmoke:
    """The `make trace-smoke` entry point, run in-process (marker-light)."""

    def test_trace_smoke_script(self, tmp_path, capsys):
        spec = importlib.util.spec_from_file_location(
            "trace_smoke", REPO_ROOT / "scripts" / "trace_smoke.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main(str(tmp_path / "smoke.jsonl")) == 0
        assert "trace-smoke ok" in capsys.readouterr().out


class TestBenchHarnessTiming:
    def test_emit_writes_bench_json(self, tmp_path, monkeypatch, capsys):
        import sys

        sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
        try:
            import _harness
        finally:
            sys.path.pop(0)
        monkeypatch.setattr(_harness, "RESULTS_DIR", tmp_path)

        class FakeBenchmark:
            @staticmethod
            def pedantic(fn, args=(), kwargs=None, rounds=1, iterations=1):
                return fn(*args, **(kwargs or {}))

        result = _harness.run_once(FakeBenchmark, lambda: 41 + 1)
        assert result == 42
        _harness.note_rounds(1000)
        _harness.emit("E0_test", "hello")
        record = json.loads((tmp_path / "BENCH_E0_test.json").read_text())
        assert record["experiment"] == "E0_test"
        assert record["wall_clock_s"] > 0
        assert record["rounds"] == 1000
        assert record["rounds_per_second"] == pytest.approx(
            1000 / record["wall_clock_s"]
        )
        # A follow-up emit without run_once reports null timing, not stale data.
        _harness.emit("E0_other", "world")
        other = json.loads((tmp_path / "BENCH_E0_other.json").read_text())
        assert other["wall_clock_s"] is None
        assert other["rounds_per_second"] is None


class TestValidatorHoisting:
    """The shared count validator in dynamics.config (engine/sequential dedup)."""

    def test_validate_count_bounds(self):
        from repro.dynamics.config import validate_count

        assert validate_count(10, 1, 5) == (1, 10)
        with pytest.raises(ValueError, match=r"\[1, 10\]"):
            validate_count(10, 1, 0)
        with pytest.raises(ValueError, match=r"\[0, 9\]"):
            validate_count(10, 0, 10)

    def test_validate_counts_array(self):
        from repro.dynamics.config import validate_counts

        assert validate_counts(10, 1, np.array([1, 5, 10])) == (1, 10)
        with pytest.raises(ValueError, match="range"):
            validate_counts(10, 1, np.array([1, 11]))

    def test_engine_and_sequential_raise_identically(self):
        from repro.dynamics.engine import step_count
        from repro.dynamics.sequential import sequential_transition_probabilities

        rng = make_rng(0)
        with pytest.raises(ValueError) as engine_error:
            step_count(voter(1), 10, 1, 0, rng)
        with pytest.raises(ValueError) as sequential_error:
            sequential_transition_probabilities(voter(1), 10, 1, 0)
        assert str(engine_error.value) == str(sequential_error.value)
