"""Tests for the `repro watch` dashboard (pure reader over heartbeats)."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.analysis.watch import (
    discover_traces,
    render_frame,
    tail_trace_round,
    watch,
)
from repro.telemetry.heartbeat import (
    HEARTBEAT_SUFFIX,
    Heartbeat,
    heartbeat_path,
    write_heartbeat,
)

NOW = 1700000000.0


def shard_beat(shard: int, **overrides) -> Heartbeat:
    fields = dict(
        role="shard", status="running", pid=100 + shard, updated_at=NOW,
        round=120, max_rounds=1000, replicas=2, replicas_done=1,
        rounds_per_second=40.0, shard=shard, attempt=1, rss_bytes=50 << 20,
    )
    fields.update(overrides)
    return Heartbeat(**fields)


class TestRenderFrame:
    def test_supervisor_first_then_shards(self):
        entries = [
            (Path("b.shard0.heartbeat.json"), shard_beat(0)),
            (
                Path("b.heartbeat.json"),
                Heartbeat(
                    role="supervisor", status="running", updated_at=NOW,
                    replicas=4, replicas_done=1, shards=2, retries=1,
                    timeouts=0, failed_shards=0,
                ),
            ),
        ]
        frame = render_frame(entries, now=NOW)
        lines = frame.splitlines()
        assert lines[0].startswith("supervisor")
        assert "retries 1" in lines[0]
        assert lines[1].startswith("shard 0")
        assert "1/2 replicas" in lines[1]
        assert "round 120/1000" in lines[1]
        assert "40 r/s" in lines[1]
        assert "eta" in lines[1]

    def test_torn_heartbeat_rendered_not_hidden(self):
        frame = render_frame([(Path("b.shard1.heartbeat.json"), None)], now=NOW)
        assert "UNREADABLE" in frame
        assert "b.shard1" in frame

    def test_quarantined_shard_flagged(self):
        frame = render_frame(
            [(Path("x"), shard_beat(1, status="failed", attempt=3))], now=NOW
        )
        assert "QUARANTINED" in frame
        assert "attempt 3" in frame

    def test_stale_heartbeat_flagged(self):
        fresh = render_frame(
            [(Path("x"), shard_beat(0, updated_at=NOW - 1))],
            now=NOW, stale_after=5.0,
        )
        stale = render_frame(
            [(Path("x"), shard_beat(0, updated_at=NOW - 60))],
            now=NOW, stale_after=5.0,
        )
        assert "stale?" not in fresh
        assert "stale?" in stale

    def test_terminal_beat_shows_status_not_age(self):
        frame = render_frame(
            [(Path("x"), shard_beat(0, status="done"))], now=NOW
        )
        assert "done" in frame
        assert "age" not in frame and "stale?" not in frame

    def test_trace_footer(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        trace.write_text(
            json.dumps({"kind": "round", "t": 7, "count": 93}) + "\n"
        )
        frame = render_frame([(Path("x"), shard_beat(0))], traces=[trace], now=NOW)
        assert "last round t=7 count=93" in frame


class TestTraceTailing:
    def test_last_round_record_wins(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        with trace.open("w") as handle:
            handle.write(json.dumps({"kind": "run_start"}) + "\n")
            for t in range(1, 50):
                handle.write(
                    json.dumps({"kind": "round", "t": t, "count": 100 - t}) + "\n"
                )
            handle.write(json.dumps({"kind": "run_end"}) + "\n")
        record = tail_trace_round(trace)
        assert record["t"] == 49

    def test_torn_tail_skipped(self, tmp_path):
        trace = tmp_path / "run.jsonl.tmp"
        trace.write_text(
            json.dumps({"kind": "round", "t": 3, "count": 5}) + "\n"
            + '{"kind": "round", "t": 4, "cou'  # torn mid-line
        )
        assert tail_trace_round(trace)["t"] == 3

    def test_missing_or_roundless_file(self, tmp_path):
        assert tail_trace_round(tmp_path / "absent.jsonl") is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert tail_trace_round(empty) is None
        # An empty columnar file is equally roundless, not an error.
        empty_columnar = tmp_path / "empty.ctrace"
        empty_columnar.write_bytes(b"")
        assert tail_trace_round(empty_columnar) is None

    def test_trace_ending_in_span_record(self, tmp_path):
        # The tail reader must skip past trailing non-round records in
        # both containers and still surface the last round.
        span = {
            "kind": "span", "name": "sim", "path": "sim", "depth": 0,
            "calls": 1, "wall_s": 0.25, "counters": {},
        }
        records = [
            {"kind": "round", "t": 5, "count": 40},
            {"kind": "round", "t": 6, "count": 39},
            span,
        ]
        jsonl = tmp_path / "run.jsonl"
        jsonl.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert tail_trace_round(jsonl)["t"] == 6

        from repro.telemetry import write_trace_records

        columnar = tmp_path / "run.ctrace"
        write_trace_records(columnar, records, "columnar", chunk_rounds=1)
        assert tail_trace_round(columnar)["t"] == 6

    def test_discover_traces_excludes_tmp(self, tmp_path):
        base = tmp_path / "run.ckpt"
        (tmp_path / "run.ckpt.jsonl").write_text("")
        (tmp_path / "run.ckpt.shard0.jsonl.tmp").write_text("")
        (tmp_path / "unrelated.jsonl").write_text("")
        names = [p.name for p in discover_traces(base)]
        assert names == ["run.ckpt.jsonl"]

    def test_discover_traces_mixed_shard_tagged_directory(self, tmp_path):
        # A supervised run that switched formats mid-history: shard
        # fragments and merged traces in both containers, plus in-flight
        # tmp files that must stay hidden.
        base = tmp_path / "run.ckpt"
        for name in (
            "run.ckpt.jsonl",
            "run.ckpt.shard0.jsonl",
            "run.ckpt.shard1.ctrace",
            "run.ckpt.ctrace",
        ):
            (tmp_path / name).write_text("")
        (tmp_path / "run.ckpt.shard2.ctrace.tmp").write_text("")
        (tmp_path / "other.ctrace").write_text("")
        names = [p.name for p in discover_traces(base)]
        assert names == [
            "run.ckpt.ctrace",
            "run.ckpt.jsonl",
            "run.ckpt.shard0.jsonl",
            "run.ckpt.shard1.ctrace",
        ]

    def test_tail_agrees_across_formats_after_round_trip(self, tmp_path):
        from repro.dynamics.config import Configuration
        from repro.dynamics.rng import make_rng
        from repro.dynamics.run import simulate
        from repro.protocols import voter
        from repro.telemetry import JsonlTraceWriter, jsonl_to_columnar

        jsonl = tmp_path / "run.jsonl"
        with JsonlTraceWriter(jsonl, include_timings=False) as writer:
            simulate(
                voter(1), Configuration(n=64, z=1, x0=1), 50_000,
                make_rng(0), recorder=writer,
            )
        columnar = tmp_path / "run.ctrace"
        jsonl_to_columnar(jsonl, columnar, chunk_rounds=16)
        assert tail_trace_round(columnar) == tail_trace_round(jsonl)


class TestServiceView:
    @staticmethod
    def make_root(tmp_path):
        from repro.service.jobstore import JobStore

        root = tmp_path / "svc"
        store = JobStore(root)
        return root, store

    def test_is_service_root(self, tmp_path):
        from repro.analysis.watch import is_service_root

        root, store = self.make_root(tmp_path)
        store.close()
        assert is_service_root(root)
        assert not is_service_root(tmp_path / "elsewhere")
        assert not is_service_root(tmp_path)

    def test_frame_lists_jobs_with_counts(self, tmp_path):
        from repro.analysis.watch import render_service_frame

        root, store = self.make_root(tmp_path)
        store.submit({"kind": "ensemble"})
        done = store.submit({"kind": "ensemble"})
        store.transition(done.id, "running", attempt=1)
        store.transition(done.id, "done")
        store.close()

        frame = render_service_frame(root, now=NOW)
        lines = frame.splitlines()
        assert lines[0].startswith("service")
        assert "queued 1" in lines[0] and "done 1" in lines[0]
        assert f"(journal seq {store.seq})" in lines[0]
        assert any(line.startswith("J000001") and "queued" in line for line in lines)
        assert any(line.startswith("J000002") and "done" in line for line in lines)

    def test_running_job_without_heartbeat_flagged_orphaned(self, tmp_path):
        from repro.analysis.watch import render_service_frame

        root, store = self.make_root(tmp_path)
        job = store.submit({"kind": "ensemble"})
        store.transition(job.id, "running", attempt=1, worker_pid=12345)
        store.close()

        frame = render_service_frame(root, now=NOW)
        assert "no heartbeat  ORPHANED?" in frame

    def test_stale_heartbeat_flagged_orphaned_fresh_not(self, tmp_path):
        from repro.analysis.watch import render_service_frame

        root, store = self.make_root(tmp_path)
        job = store.submit({"kind": "ensemble"})
        store.transition(job.id, "running", attempt=1)
        store.close()
        beat = Heartbeat(
            role="job", status="running", updated_at=NOW - 1.0,
            round=10, max_rounds=100, replicas=4, replicas_done=1,
        )
        (root / job.id).mkdir()
        write_heartbeat(heartbeat_path(root / job.id / "job"), beat)
        fresh = render_service_frame(root, now=NOW, stale_after=5.0)
        assert "ORPHANED?" not in fresh
        assert "1/4 replicas" in fresh

        stale = render_service_frame(root, now=NOW + 60, stale_after=5.0)
        assert "ORPHANED?" in stale

    def test_failed_job_shows_taxonomy_and_error(self, tmp_path):
        from repro.analysis.watch import render_service_frame

        root, store = self.make_root(tmp_path)
        job = store.submit({"kind": "ensemble"}, max_retries=1)
        store.transition(job.id, "running", attempt=1)
        store.transition(
            job.id, "failed", retries=2, exit_code=1,
            exit_name="EXIT_ERROR", error="worker exited 1",
        )
        store.close()

        frame = render_service_frame(root, now=NOW)
        assert "EXIT_ERROR" in frame
        assert "retries 2/1" in frame
        assert "(worker exited 1)" in frame

    def test_watch_loop_exits_when_all_jobs_terminal(self, tmp_path):
        root, store = self.make_root(tmp_path)
        job = store.submit({"kind": "ensemble"})
        store.transition(job.id, "cancelled")
        store.close()
        stream = io.StringIO()
        assert watch(root, interval=0.01, stream=stream) == 0
        assert "cancelled" in stream.getvalue()

    def test_watch_once_on_active_service_root(self, tmp_path):
        root, store = self.make_root(tmp_path)
        store.submit({"kind": "ensemble"})
        store.close()
        stream = io.StringIO()
        assert watch(root, once=True, stream=stream) == 0
        assert "queued 1" in stream.getvalue()


class TestWatchLoop:
    def test_no_heartbeats_exits_one(self, tmp_path):
        stream = io.StringIO()
        assert watch(tmp_path / "nothing", once=True, stream=stream) == 1
        assert "no heartbeat files" in stream.getvalue()

    def test_once_renders_single_frame(self, tmp_path):
        base = tmp_path / "run.ckpt"
        write_heartbeat(heartbeat_path(base), shard_beat(0))
        stream = io.StringIO()
        assert watch(base, once=True, stream=stream) == 0
        assert "shard 0" in stream.getvalue()

    def test_exits_zero_when_all_terminal(self, tmp_path):
        base = tmp_path / "run.ckpt"
        write_heartbeat(heartbeat_path(base), shard_beat(0, status="done"))
        write_heartbeat(
            heartbeat_path(base.with_name(base.name + ".shard1")),
            shard_beat(1, status="failed"),
        )
        stream = io.StringIO()
        # Not --once: the loop must notice every writer is terminal and stop.
        assert watch(base, interval=0.01, stream=stream) == 0
        out = stream.getvalue()
        assert "done" in out and "QUARANTINED" in out

    def test_post_mortem_includes_torn_file(self, tmp_path):
        base = tmp_path / "run.ckpt"
        write_heartbeat(heartbeat_path(base), shard_beat(0, status="done"))
        (tmp_path / f"run.ckpt.shard1{HEARTBEAT_SUFFIX}").write_text('{"half')
        stream = io.StringIO()
        assert watch(base, once=True, stream=stream) == 0
        assert "UNREADABLE" in stream.getvalue()
